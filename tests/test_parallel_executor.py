"""Tests for the shared-memory multiprocess brick executor.

The load-bearing property: :class:`SharedMemoryPoolExecutor` must be
**bitwise-indistinguishable** from :class:`InProcessExecutor` — outputs,
per-reducer routing, and every ``JobStats``/``MapStats``-derived counter
— across worker counts, brick layouts, and ERT settings, because worker
scheduling must never leak into the rendered image.  Multi-worker
variants beyond the tier-1 smoke set are marked ``slow``.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera
from repro.core import (
    Chunk,
    InProcessExecutor,
    KVSpec,
    MapOutput,
    Mapper,
    MapReduceSpec,
    PLACEHOLDER,
    Reducer,
    RoundRobinPartitioner,
    run_length_groups,
)
from repro.parallel import (
    ArenaSpec,
    ArenaView,
    RingTimeout,
    SharedMemoryPoolExecutor,
    ShmArena,
    ShmRing,
    shm_segment_exists,
    split_runs,
)
from repro.render import RenderConfig, default_tf


# -- helpers -----------------------------------------------------------------
def make_scene(size=24, gpus=2, image=64, ert_alpha=0.98, placeholders=False):
    vol = make_dataset("skull", (size,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=image, height=image)
    r = MapReduceVolumeRenderer(
        volume=vol,
        cluster=gpus,
        render_config=RenderConfig(
            dt=0.75, ert_alpha=ert_alpha, emit_placeholders=placeholders
        ),
    )
    return r, cam


def scene_job(r, cam, bricks_per_gpu=2):
    chunks = r._chunks(r._grid(bricks_per_gpu), False)
    ctg = [c.id % r.n_gpus for c in chunks]
    return chunks, ctg


def assert_results_identical(a, b):
    assert len(a.outputs) == len(b.outputs)
    for (k1, v1), (k2, v2) in zip(a.outputs, b.outputs):
        assert np.array_equal(k1, k2)
        assert np.array_equal(v1, v2)  # bitwise, not approx
    assert np.array_equal(a.pairs_per_reducer, b.pairs_per_reducer)
    assert a.stats.as_dict() == b.stats.as_dict()
    assert len(a.works) == len(b.works)
    for w1, w2 in zip(a.works, b.works):
        assert w1.chunk_id == w2.chunk_id
        assert w1.gpu == w2.gpu
        assert w1.upload_bytes == w2.upload_bytes
        assert w1.n_rays == w2.n_rays
        assert w1.n_samples == w2.n_samples
        assert w1.pairs_emitted == w2.pairs_emitted
        assert w1.read_from_disk == w2.read_from_disk
        assert np.array_equal(w1.pairs_to_reducer, w2.pairs_to_reducer)


def run_equivalence(workers, *, gpus=2, bricks_per_gpu=2, ert_alpha=0.98,
                    placeholders=False, **pool_kwargs):
    r, cam = make_scene(gpus=gpus, ert_alpha=ert_alpha, placeholders=placeholders)
    chunks, ctg = scene_job(r, cam, bricks_per_gpu)
    ref = InProcessExecutor().execute(r._spec(cam), chunks, ctg)
    with SharedMemoryPoolExecutor(workers=workers, **pool_kwargs) as pool:
        got = pool.execute(r._spec(cam), chunks, ctg)
    assert_results_identical(ref, got)


# -- pool vs in-process equivalence (tier-1 smoke set) -----------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_pool_matches_inprocess(workers):
    run_equivalence(workers)


@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
@pytest.mark.parametrize("workers", [1, 2])
def test_pool_worker_reduce_matches_inprocess(workers, shuffle_mode):
    # The paper's symmetric layout: Sort+Reduce on the owning worker —
    # over every shuffle plane (parent-routed runs, the direct
    # worker<->worker edge mesh, and the socket streams).
    run_equivalence(workers, reduce_mode="worker", shuffle_mode=shuffle_mode)


@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
def test_pool_worker_reduce_with_pipeline_depth_matches(shuffle_mode):
    run_equivalence(
        2, reduce_mode="worker", shuffle_mode=shuffle_mode, pipeline_depth=2
    )


@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
def test_pool_worker_reduce_more_reducers_than_workers(shuffle_mode):
    # gpus=3 -> 3 reducer partitions over 2 workers: worker 0 owns {0, 2}.
    run_equivalence(
        2, gpus=3, bricks_per_gpu=3, reduce_mode="worker",
        shuffle_mode=shuffle_mode,
    )


def test_pool_mesh_more_workers_than_reducers():
    # 4 workers over 2 partitions: workers 2 and 3 own nothing, get no
    # reduce message, and receive no mesh records — but still map.
    run_equivalence(
        4, gpus=2, bricks_per_gpu=2, reduce_mode="worker", shuffle_mode="mesh"
    )


def test_pool_mesh_fallback_when_record_outgrows_edge():
    # Edges too small for any real run force every record through the
    # parent-queue relay; results must be unchanged and counted.
    run_equivalence(
        2, reduce_mode="worker", shuffle_mode="mesh", mesh_edge_capacity=64
    )


def test_pool_rejects_bad_knobs():
    with pytest.raises(ValueError, match="reduce_mode"):
        SharedMemoryPoolExecutor(workers=1, reduce_mode="gpu")
    with pytest.raises(ValueError, match="pipeline depth"):
        SharedMemoryPoolExecutor(workers=1, pipeline_depth=0)
    with pytest.raises(ValueError, match="shuffle_mode"):
        SharedMemoryPoolExecutor(workers=1, shuffle_mode="broadcast")
    with pytest.raises(ValueError, match="ring write timeout"):
        SharedMemoryPoolExecutor(workers=1, ring_write_timeout=0.0)


def test_serial_fallback_matches_inprocess():
    run_equivalence(1, serial=True)


def test_pool_matches_with_placeholders_and_no_ert():
    run_equivalence(2, ert_alpha=1.0, placeholders=True)


def test_pool_multi_frame_resident_arena():
    """Frames of an orbit republish nothing and stay bitwise identical."""
    r, _ = make_scene()
    with SharedMemoryPoolExecutor(workers=2) as pool:
        for az in (0.0, 120.0, 240.0):
            cam = orbit_camera(r.volume_shape, azimuth_deg=az, width=64, height=64)
            chunks, ctg = scene_job(r, cam)
            ref = InProcessExecutor().execute(r._spec(cam), chunks, ctg)
            got = pool.execute(r._spec(cam), chunks, ctg)
            assert_results_identical(ref, got)
        assert pool._arena_fingerprint is not None


def test_pool_inline_fallback_when_chunk_outgrows_ring():
    # A ring too small for any chunk's fragments forces the queue path;
    # results must be unchanged.
    run_equivalence(2, ring_capacity=256)


def test_pool_counts_queue_fallbacks():
    r, cam = make_scene()
    chunks, ctg = scene_job(r, cam)
    with SharedMemoryPoolExecutor(workers=2, ring_capacity=256) as pool:
        got = pool.execute(r._spec(cam), chunks, ctg)
    assert got.stats.ring is not None
    assert 1 <= got.stats.ring["queue_fallbacks"] <= len(chunks)
    assert got.stats.ring["ring_capacity"] == 256


def test_pipelined_orbit_smoke_bitwise_and_walls():
    """Tier-1 smoke: a depth-2 worker-reduce orbit is bitwise-identical
    to the serial orbit and records one wall time per frame."""
    from repro.pipeline import render_rotation

    r_ref, _ = make_scene()
    ref = render_rotation(
        r_ref, n_frames=3, mode="exec", width=64, height=64, keep_images=True
    )
    with MapReduceVolumeRenderer(
        volume=r_ref.volume,
        cluster=2,
        render_config=r_ref.render_config,
        executor="pool",
        workers=2,
        reduce_mode="worker",
        pipeline_depth=2,
    ) as r:
        assert r.frame_pipeline_depth == 2
        rot = render_rotation(
            r, n_frames=3, mode="exec", width=64, height=64, keep_images=True
        )
    assert len(rot.wall_seconds) == 3 and all(w > 0 for w in rot.wall_seconds)
    for img, img_ref in zip(rot.images, ref.images):
        assert np.array_equal(img, img_ref)


def test_pipelined_out_of_core_orbit_matches_serial():
    """Out-of-core frames through the submit/collect pipeline: chunk
    loads feed the arena at submit time (the prefetch path) and images
    stay bitwise-identical to the serial out-of-core render."""
    from repro.render import RenderConfig
    from repro.volume.datasets import DATASET_FIELDS

    cfg = RenderConfig(dt=0.75)
    shape = (24,) * 3
    cams = [
        orbit_camera(shape, azimuth_deg=a, width=64, height=64)
        for a in (0.0, 120.0, 240.0)
    ]
    ref = MapReduceVolumeRenderer(
        volume_shape=shape,
        field=DATASET_FIELDS["skull"],
        cluster=2,
        render_config=cfg,
    )
    refs = [ref.render(c, mode="exec", out_of_core=True).image for c in cams]
    with MapReduceVolumeRenderer(
        volume_shape=shape,
        field=DATASET_FIELDS["skull"],
        cluster=2,
        render_config=cfg,
        executor="pool",
        workers=2,
        reduce_mode="worker",
        pipeline_depth=2,
    ) as r:
        handles = [r.submit_frame(c, out_of_core=True) for c in cams]
        imgs = [r.collect_frame(h).image for h in handles]
    for img_ref, img in zip(refs, imgs):
        assert np.array_equal(img_ref, img)


def test_submit_collect_out_of_order_and_depth_cap():
    """Collecting a newer handle first completes the older ones; the
    depth cap force-collects the oldest at submit time."""
    r, _ = make_scene()
    cams = [
        orbit_camera(r.volume_shape, azimuth_deg=a, width=64, height=64)
        for a in (0.0, 120.0, 240.0)
    ]
    chunks, ctg = scene_job(r, cams[0])
    refs = [InProcessExecutor().execute(r._spec(c), chunks, ctg) for c in cams]
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", pipeline_depth=2
    ) as pool:
        handles = [pool.submit(r._spec(c), chunks, ctg) for c in cams]
        # Depth 2: submitting the 3rd frame must have force-collected the 1st.
        assert handles[0].done and not handles[2].done
        got_last = pool.collect(handles[2])  # completes #1 on the way
        assert handles[1].done
        assert_results_identical(refs[2], got_last)
        assert_results_identical(refs[0], pool.collect(handles[0]))
        assert_results_identical(refs[1], pool.collect(handles[1]))


def test_renderer_pool_image_identical():
    r_ref, cam = make_scene()
    img_ref = r_ref.render(cam, mode="exec").image
    vol = r_ref.volume
    with MapReduceVolumeRenderer(
        volume=vol,
        cluster=2,
        render_config=r_ref.render_config,
        executor="pool",
        workers=2,
    ) as r_pool:
        img_pool = r_pool.render(cam, mode="exec").image
        img_pool2 = r_pool.render(cam, mode="exec").image  # warm arena + caches
    assert np.array_equal(img_ref, img_pool)
    assert np.array_equal(img_ref, img_pool2)


# -- full matrix (slow) ------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("gpus,bricks_per_gpu", [(1, 2), (2, 2), (4, 1), (3, 3)])
@pytest.mark.parametrize("ert_alpha", [1.0, 0.98, 0.5])
def test_pool_matches_inprocess_matrix(workers, gpus, bricks_per_gpu, ert_alpha):
    run_equivalence(
        workers, gpus=gpus, bricks_per_gpu=bricks_per_gpu, ert_alpha=ert_alpha
    )


@pytest.mark.slow
@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("pipeline_depth", [1, 2, 3])
@pytest.mark.parametrize("gpus,bricks_per_gpu", [(2, 2), (3, 3)])
def test_pool_worker_reduce_matrix(
    workers, pipeline_depth, gpus, bricks_per_gpu, shuffle_mode
):
    run_equivalence(
        workers,
        gpus=gpus,
        bricks_per_gpu=bricks_per_gpu,
        reduce_mode="worker",
        shuffle_mode=shuffle_mode,
        pipeline_depth=pipeline_depth,
    )


@pytest.mark.slow
@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
@pytest.mark.parametrize("reduce_mode", ["parent", "worker"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_pipelined_orbit_matches_serial_matrix(reduce_mode, workers, shuffle_mode):
    from repro.pipeline import render_rotation

    r_ref, _ = make_scene()
    ref = render_rotation(
        r_ref, n_frames=4, mode="exec", width=64, height=64, keep_images=True
    )
    with MapReduceVolumeRenderer(
        volume=r_ref.volume,
        cluster=2,
        render_config=r_ref.render_config,
        executor="pool",
        workers=workers,
        reduce_mode=reduce_mode,
        shuffle_mode=shuffle_mode,
        pipeline_depth=2,
    ) as r:
        rot = render_rotation(
            r, n_frames=4, mode="exec", width=64, height=64, keep_images=True
        )
    assert len(rot.images) == len(ref.images) == 4
    for img, img_ref in zip(rot.images, ref.images):
        assert np.array_equal(img, img_ref)


# -- generic (non-render) jobs through the pool ------------------------------
KV = np.dtype([("key", np.int32), ("val", np.float32)])


class ModSquareMapper(Mapper):
    """Synthetic mapper (module-level: must be picklable for the pool)."""

    def __init__(self, max_key):
        self.max_key = max_key

    def map(self, chunk):
        data = chunk.payload()
        pairs = np.empty(len(data), dtype=KV)
        keys = (data.astype(np.int64) % (self.max_key + 1)).astype(np.int32)
        keys[data % 2 == 1] = PLACEHOLDER
        pairs["key"] = keys
        pairs["val"] = data.astype(np.float32) ** 2
        return MapOutput(pairs, work={"n_rays": len(data), "n_samples": 3 * len(data)})


class SumReducer(Reducer):
    def reduce_all(self, pairs):
        keys, starts, _ = run_length_groups(pairs["key"])
        sums = np.add.reduceat(pairs["val"], starts) if len(keys) else np.zeros(0)
        return keys, sums


def test_pool_runs_generic_mapreduce_job():
    rng = np.random.default_rng(7)
    chunks = [
        Chunk(id=i, nbytes=d.nbytes, data=d)
        for i, d in enumerate(
            rng.integers(0, 100, 64).astype(np.int64) for _ in range(5)
        )
    ]
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(3),
        kv=KVSpec(KV),
        max_key=9,
    )
    ref = InProcessExecutor().execute(spec, chunks, [0, 1, 0, 1, 0])
    with SharedMemoryPoolExecutor(workers=2) as pool:
        got = pool.execute(spec, chunks, [0, 1, 0, 1, 0])
    assert_results_identical(ref, got)


class BoomMapper(Mapper):
    def map(self, chunk):
        raise RuntimeError("boom in worker")


def test_pool_propagates_worker_errors_and_resets():
    chunks = [Chunk(id=0, nbytes=8, data=np.zeros(1, np.int64))]
    spec = MapReduceSpec(
        mapper=BoomMapper(),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(1),
        kv=KVSpec(KV),
        max_key=9,
    )
    with SharedMemoryPoolExecutor(workers=1) as pool:
        with pytest.raises(RuntimeError, match="boom in worker"):
            pool.execute(spec, chunks)
        # A failed map task may leave partial fragment runs in its
        # worker's ring, so the pool tears itself down rather than risk
        # serving misaligned bytes; a retry starts from a fresh pool.
        assert not pool.running
        good = MapReduceSpec(
            mapper=ModSquareMapper(9),
            reducer=SumReducer(),
            partitioner=RoundRobinPartitioner(1),
            kv=KVSpec(KV),
            max_key=9,
        )
        data = np.arange(10, dtype=np.int64) * 2
        ref = InProcessExecutor().execute(
            good, [Chunk(id=0, nbytes=data.nbytes, data=data)]
        )
        got = pool.execute(good, [Chunk(id=0, nbytes=data.nbytes, data=data)])
        assert_results_identical(ref, got)


class ExitMapper(Mapper):
    """Hard-kills the worker process on one specific chunk (no cleanup,
    no exception — the way a real segfault/OOM kill looks)."""

    def __init__(self, kill_chunk):
        self.kill_chunk = kill_chunk
        self.inner = ModSquareMapper(9)

    def map(self, chunk):
        if chunk.id == self.kill_chunk:
            os._exit(3)
        return self.inner.map(chunk)


def _generic_job(mapper, n_chunks=4, n_reducers=2, seed=13, n_elems=32):
    rng = np.random.default_rng(seed)
    datas = [
        rng.integers(0, 100, n_elems).astype(np.int64)
        for _ in range(n_chunks)
    ]
    chunks = [
        Chunk(id=i, nbytes=d.nbytes, data=d) for i, d in enumerate(datas)
    ]
    spec = MapReduceSpec(
        mapper=mapper,
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(n_reducers),
        kv=KVSpec(KV),
        max_key=9,
    )
    return spec, chunks


def _all_segment_names(pool) -> list:
    """Every shared-memory segment the pool currently holds: uplink
    rings, the arena, and — on the mesh plane — all N×N edge rings."""
    names = [ring.name for ring in pool._state["rings"]]
    names.append(pool._state["arena"].name)
    names.extend(r.name for r in pool._state.get("mesh_edges", {}).values())
    return names


@pytest.mark.parametrize(
    "reduce_mode,shuffle_mode",
    [("parent", "parent"), ("worker", "parent"), ("worker", "mesh"),
     ("worker", "tcp")],
)
def test_pool_worker_crash_mid_frame_teardown_and_retry(reduce_mode, shuffle_mode):
    """Kill a worker mid-frame: the pool must tear down cleanly (no
    leaked shared-memory segments — including worker-created mesh
    edges), and a retry on the same executor must run on a fresh pool
    with no stale ring bytes.

    ``supervise=False`` pins the *legacy* fail-fast semantics (the
    default now recovers in place; see test_supervision.py).  The crash
    comes from user mapper code, which supervision would faithfully
    re-execute all the way down the degradation ladder into the parent.
    """
    good_spec, chunks = _generic_job(ModSquareMapper(9))
    crash_spec, _ = _generic_job(ExitMapper(kill_chunk=2))
    ref = InProcessExecutor().execute(good_spec, chunks, [0, 1, 0, 1])
    pool = SharedMemoryPoolExecutor(
        workers=2, reduce_mode=reduce_mode, shuffle_mode=shuffle_mode,
        supervise=False,
    )
    try:
        # Warm frame: creates rings + arena whose names we can audit.
        got = pool.execute(good_spec, chunks, [0, 1, 0, 1])
        assert_results_identical(ref, got)
        names = _all_segment_names(pool)
        if shuffle_mode == "mesh":
            assert len(pool._state["mesh_edges"]) == 2  # 2 workers -> 2 edges

        # On the socket plane the survivor may report the dead peer's
        # dropped connection before the parent's liveness probe notices
        # the corpse — either surfaces the failure.
        with pytest.raises(
            RuntimeError, match="died during execute|dropped connection"
        ):
            pool.execute(crash_spec, chunks, [0, 1, 0, 1])
        assert not pool.running
        for name in names:
            assert not shm_segment_exists(name), f"leaked segment {name}"

        # Retry: a fresh pool (new processes, new segments) — chunk 0's
        # fragments from the crashed frame must not bleed into this one.
        got = pool.execute(good_spec, chunks, [0, 1, 0, 1])
        assert_results_identical(ref, got)
    finally:
        pool.close()


@pytest.mark.slow
@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
def test_pool_crash_soak_pipelined(shuffle_mode):
    """Soak: interleave pipelined frames with a mid-flight worker crash
    repeatedly; every recovery must produce bitwise-correct results and
    release every shared-memory segment — on both shuffle planes."""
    good_spec, chunks = _generic_job(ModSquareMapper(9), n_chunks=6)
    crash_spec, _ = _generic_job(ExitMapper(kill_chunk=4), n_chunks=6)
    ref = InProcessExecutor().execute(good_spec, chunks)
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode=shuffle_mode,
        pipeline_depth=2, supervise=False,  # pin legacy fail-fast teardown
    ) as pool:
        for _ in range(3):
            h1 = pool.submit(good_spec, chunks)
            h2 = pool.submit(good_spec, chunks)
            assert_results_identical(ref, pool.collect(h1))
            names = _all_segment_names(pool)
            with pytest.raises(RuntimeError):
                pool.collect(pool.submit(crash_spec, chunks))
            assert not pool.running
            # h2 was in flight when the pool died.  Depending on whether
            # its (already queued) results drained before the crash was
            # detected, it either completed bitwise-correct or aborted —
            # but it must never return wrong data or hang.
            if h2.done:
                assert_results_identical(ref, pool.collect(h2))
            else:
                with pytest.raises(RuntimeError, match="aborted"):
                    pool.collect(h2)
            for name in names:
                assert not shm_segment_exists(name), f"leaked segment {name}"
            assert_results_identical(ref, pool.execute(good_spec, chunks))


class BoomReducer(SumReducer):
    def reduce_all(self, pairs):
        raise RuntimeError("boom in reduce")


def test_worker_reduce_errors_name_the_reduce_stage():
    spec, chunks = _generic_job(ModSquareMapper(9))
    spec.reducer = BoomReducer()
    with SharedMemoryPoolExecutor(workers=1, reduce_mode="worker") as pool:
        with pytest.raises(RuntimeError, match="reduce of partitions"):
            pool.execute(spec, chunks)
        assert not pool.running  # failed frames always tear the pool down


class UnpicklableSumReducer(SumReducer):
    """A reducer carrying a resource that cannot cross process lines."""

    def __init__(self):
        self.lock = threading.Lock()  # pickling this raises TypeError


def test_parent_reduce_tolerates_unpicklable_reducer():
    # Parent-mode workers never see the reducer, so it must not be
    # pickled into the frame payload (PR-2 behavior, preserved).
    spec, chunks = _generic_job(ModSquareMapper(9))
    spec.reducer = UnpicklableSumReducer()
    ref = InProcessExecutor().execute(spec, chunks)
    with SharedMemoryPoolExecutor(workers=2, reduce_mode="parent") as pool:
        got = pool.execute(spec, chunks)
    assert_results_identical(ref, got)


def test_stale_aborted_handle_does_not_kill_restarted_pool():
    """Collecting a handle that died with an earlier pool incarnation
    must raise — without tearing down the healthy pool running now."""
    good_spec, chunks = _generic_job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(good_spec, chunks)
    with SharedMemoryPoolExecutor(workers=2, pipeline_depth=2) as pool:
        stale = pool.submit(good_spec, chunks)
        pool.close()  # aborts the in-flight frame
        assert not stale.done
        # Restart: a new frame in flight on a fresh pool...
        live = pool.submit(good_spec, chunks)
        assert pool.running
        # ...the stale handle errors but leaves the new pool untouched.
        with pytest.raises(RuntimeError, match="aborted"):
            pool.collect(stale)
        assert pool.running
        assert_results_identical(ref, pool.collect(live))


def test_pool_handles_empty_chunk_list():
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(2),
        kv=KVSpec(KV),
        max_key=9,
    )
    ref = InProcessExecutor().execute(spec, [])
    with SharedMemoryPoolExecutor(workers=2) as pool:
        got = pool.execute(spec, [])
    assert_results_identical(ref, got)
    assert got.works == []


def test_pool_rejects_duplicate_chunk_ids():
    d = np.zeros(2, np.int64)
    chunks = [Chunk(id=0, nbytes=d.nbytes, data=d)] * 2
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(1),
        kv=KVSpec(KV),
        max_key=9,
    )
    with SharedMemoryPoolExecutor(workers=1) as pool:
        with pytest.raises(ValueError, match="unique"):
            pool.execute(spec, chunks)


# -- ring buffer -------------------------------------------------------------
def test_ring_roundtrip_and_wraparound():
    with ShmRing.create(capacity=64) as ring:
        # Fill/drain repeatedly with sizes that force the cursor to wrap
        # at misaligned offsets.
        sent = received = b""
        payload = bytes(range(48))
        for i in range(20):
            piece = payload[: 17 + (i * 7) % 30]
            ring.write_bytes(piece, timeout=1.0)
            sent += piece
            got = ring.read_bytes(len(piece), timeout=1.0)
            received += bytes(got)
        assert received == sent
        assert ring.used == 0


def test_ring_records_roundtrip():
    dt = np.dtype([("k", np.int32), ("v", np.float32)])
    arr = np.zeros(10, dtype=dt)
    arr["k"] = np.arange(10)
    arr["v"] = np.linspace(0, 1, 10, dtype=np.float32)
    with ShmRing.create(capacity=37) as ring:  # < arr.nbytes: stream in pieces
        out = []

        def consume():
            for _ in range(len(arr)):
                out.append(ring.read_records(dt.itemsize, dt, timeout=5.0))

        consumer = threading.Thread(target=consume)
        consumer.start()
        # Producer streams record-sized pieces; consumer drains them.
        for rec in arr:
            ring.write_bytes(rec.tobytes(), timeout=5.0)
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert np.array_equal(np.concatenate(out), arr)


def test_ring_blocks_producer_until_consumed():
    with ShmRing.create(capacity=16) as ring:
        ring.write_bytes(b"x" * 16, timeout=1.0)
        t0 = time.monotonic()
        with pytest.raises(RingTimeout):
            ring.write_bytes(b"y", timeout=0.05)
        assert time.monotonic() - t0 >= 0.05
        # Draining unblocks the producer.
        drain = threading.Thread(
            target=lambda: (time.sleep(0.02), ring.read_bytes(16, timeout=1.0))
        )
        drain.start()
        ring.write_bytes(b"y" * 8, timeout=2.0)
        drain.join(timeout=2.0)
        assert bytes(ring.read_bytes(8, timeout=1.0)) == b"y" * 8


def test_ring_validation():
    with ShmRing.create(capacity=8) as ring:
        with pytest.raises(ValueError):
            ring.write_bytes(b"123456789")  # > capacity
        with pytest.raises(ValueError):
            ring.read_bytes(9)
        with pytest.raises(ValueError):
            ring.read_records(6, np.dtype(np.int32))  # not whole records
    with pytest.raises(ValueError):
        ShmRing.create(capacity=0)


def test_ring_backpressure_counters():
    """Stall time/events and the high-water mark move exactly when the
    producer actually blocks on a full ring."""
    with ShmRing.create(capacity=16) as ring:
        assert ring.counters() == {
            "stall_seconds": 0.0,
            "stall_events": 0,
            "high_water_bytes": 0,
            "written_bytes": 0,
        }
        ring.write_bytes(b"x" * 10, timeout=1.0)
        assert ring.high_water == 10
        assert ring.stall_events == 0  # fit without waiting
        ring.read_bytes(10, timeout=1.0)
        ring.write_bytes(b"y" * 16, timeout=1.0)
        assert ring.high_water == 16  # monotonic max of occupancy

        # Now force a real stall: the ring is full, a consumer drains it
        # only after a delay, so the producer must block measurably.
        drain = threading.Thread(
            target=lambda: (time.sleep(0.05), ring.read_bytes(16, timeout=2.0))
        )
        drain.start()
        ring.write_bytes(b"z" * 8, timeout=2.0)
        drain.join(timeout=2.0)
        assert ring.stall_events == 1
        assert ring.stall_seconds >= 0.03
        # A reader never bumps producer counters.
        ring.read_bytes(8, timeout=1.0)
        assert ring.stall_events == 1


def test_pool_exports_ring_backpressure_into_jobstats(monkeypatch):
    """A tiny ring + an artificially slow parent drain must register
    producer stalls, and the exported counters must actually move —
    without changing the results."""
    rng = np.random.default_rng(11)
    datas = [rng.integers(0, 100, 64).astype(np.int64) for _ in range(6)]
    chunks = [
        Chunk(id=i, nbytes=d.nbytes, data=d) for i, d in enumerate(datas)
    ]
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(2),
        kv=KVSpec(KV),
        max_key=9,
    )
    ref = InProcessExecutor().execute(spec, chunks)

    # Slow the *parent's* ring drain only (workers are separate
    # processes, unaffected by this patch): the single worker races
    # ahead and must block on its full ring, deterministically.
    real_read = ShmRing.read_records

    def slow_read(self, nbytes, dtype, timeout=30.0):
        time.sleep(0.03)
        return real_read(self, nbytes, dtype, timeout)

    monkeypatch.setattr(ShmRing, "read_records", slow_read)
    # Capacity fits one chunk's runs (~64 * 8 B) but not two.
    with SharedMemoryPoolExecutor(workers=1, ring_capacity=600) as pool:
        got = pool.execute(spec, chunks)
    assert_results_identical(ref, got)
    ring_stats = got.stats.ring
    assert ring_stats is not None
    assert ring_stats["stall_events"] >= 1
    assert ring_stats["stall_seconds"] > 0.0
    assert 0 < ring_stats["high_water_bytes"] <= 600
    assert ring_stats["queue_fallbacks"] == 0
    assert [w["worker"] for w in ring_stats["per_worker"]] == [0]
    assert (
        ring_stats["per_worker"][0]["stall_events"]
        == ring_stats["stall_events"]
    )


def test_ring_attach_and_cross_close():
    ring = ShmRing.create(capacity=128, record_size=24)
    other = ShmRing.attach(ring.name)
    assert other.capacity == 128
    assert other.record_size == 24
    other.write_bytes(b"hello")
    assert bytes(ring.read_bytes(5)) == b"hello"
    name = ring.name
    other.close()  # attachment never unlinks
    assert shm_segment_exists(name)
    ring.close()
    ring.close()  # idempotent
    assert not shm_segment_exists(name)


# -- shared-memory arena -----------------------------------------------------
def test_arena_publish_attach_and_cleanup():
    a = np.arange(12, dtype=np.float32).reshape(3, 4)
    b = np.arange(6, dtype=np.int64)
    arena = ShmArena({"a": a, 7: b})
    assert isinstance(arena.spec, ArenaSpec)
    view = ArenaView(arena.spec)
    assert np.array_equal(view.array("a"), a)
    assert np.array_equal(view.array(7), b)
    assert not view.array("a").flags.writeable  # published data is immutable
    assert "a" in view and "missing" not in view
    name = arena.name
    view.close()
    arena.close()
    arena.close()  # idempotent
    assert not shm_segment_exists(name)


def test_arena_rejects_empty():
    with pytest.raises(ValueError):
        ShmArena({})


@pytest.mark.parametrize(
    "pool_kwargs",
    [dict(), dict(reduce_mode="worker", shuffle_mode="mesh"),
     dict(reduce_mode="worker", shuffle_mode="tcp")],
    ids=["parent", "mesh", "tcp"],
)
def test_pool_releases_all_segments_on_close(pool_kwargs):
    r, cam = make_scene()
    chunks, ctg = scene_job(r, cam)
    pool = SharedMemoryPoolExecutor(workers=2, **pool_kwargs)
    pool.execute(r._spec(cam), chunks, ctg)
    names = _all_segment_names(pool)
    pool.close()
    for name in names:
        assert not shm_segment_exists(name), f"leaked segment {name}"
    pool.close()  # idempotent


# -- merge helpers -----------------------------------------------------------
def test_split_runs_checks_counters():
    dt = np.dtype([("pixel", np.int32), ("v", np.float32)])
    pairs = np.zeros(5, dtype=dt)
    runs = split_runs(pairs, [2, 0, 3])
    assert [len(x) for x in runs] == [2, 0, 3]
    with pytest.raises(ValueError):
        split_runs(pairs, [2, 2])


def test_camera_pickle_excludes_ray_grid_cache():
    # The pool pickles a camera per frame; the lazily-built full-viewport
    # direction grid must not ride along.
    import pickle

    cam = orbit_camera((16, 16, 16), width=64, height=64)
    cam.rect_rays_f32(cam.full_rect())  # populate the cache
    assert "_dirs32_grid" in cam.__dict__
    clone = pickle.loads(pickle.dumps(cam))
    assert "_dirs32_grid" not in clone.__dict__
    # The clone still renders identically (cache rebuilt lazily).
    d1, k1 = cam.rect_rays_f32(cam.full_rect())
    d2, k2 = clone.rect_rays_f32(clone.full_rect())
    assert np.array_equal(d1, d2) and np.array_equal(k1, k2)


# -- executor config hygiene (shared-default fix) ----------------------------
def test_executor_configs_are_per_instance():
    assert InProcessExecutor().config is not InProcessExecutor().config
    p1 = SharedMemoryPoolExecutor(workers=1, serial=True)
    p2 = SharedMemoryPoolExecutor(workers=1, serial=True)
    assert p1.config is not p2.config
