"""Tests for the shared-memory multiprocess brick executor.

The load-bearing property: :class:`SharedMemoryPoolExecutor` must be
**bitwise-indistinguishable** from :class:`InProcessExecutor` — outputs,
per-reducer routing, and every ``JobStats``/``MapStats``-derived counter
— across worker counts, brick layouts, and ERT settings, because worker
scheduling must never leak into the rendered image.  Multi-worker
variants beyond the tier-1 smoke set are marked ``slow``.
"""

import threading
import time

import numpy as np
import pytest

from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera
from repro.core import (
    Chunk,
    InProcessExecutor,
    KVSpec,
    MapOutput,
    Mapper,
    MapReduceSpec,
    PLACEHOLDER,
    Reducer,
    RoundRobinPartitioner,
    run_length_groups,
)
from repro.parallel import (
    ArenaSpec,
    ArenaView,
    RingTimeout,
    SharedMemoryPoolExecutor,
    ShmArena,
    ShmRing,
    shm_segment_exists,
    split_runs,
)
from repro.render import RenderConfig, default_tf


# -- helpers -----------------------------------------------------------------
def make_scene(size=24, gpus=2, image=64, ert_alpha=0.98, placeholders=False):
    vol = make_dataset("skull", (size,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=image, height=image)
    r = MapReduceVolumeRenderer(
        volume=vol,
        cluster=gpus,
        render_config=RenderConfig(
            dt=0.75, ert_alpha=ert_alpha, emit_placeholders=placeholders
        ),
    )
    return r, cam


def scene_job(r, cam, bricks_per_gpu=2):
    chunks = r._chunks(r._grid(bricks_per_gpu), False)
    ctg = [c.id % r.n_gpus for c in chunks]
    return chunks, ctg


def assert_results_identical(a, b):
    assert len(a.outputs) == len(b.outputs)
    for (k1, v1), (k2, v2) in zip(a.outputs, b.outputs):
        assert np.array_equal(k1, k2)
        assert np.array_equal(v1, v2)  # bitwise, not approx
    assert np.array_equal(a.pairs_per_reducer, b.pairs_per_reducer)
    assert a.stats.as_dict() == b.stats.as_dict()
    assert len(a.works) == len(b.works)
    for w1, w2 in zip(a.works, b.works):
        assert w1.chunk_id == w2.chunk_id
        assert w1.gpu == w2.gpu
        assert w1.upload_bytes == w2.upload_bytes
        assert w1.n_rays == w2.n_rays
        assert w1.n_samples == w2.n_samples
        assert w1.pairs_emitted == w2.pairs_emitted
        assert w1.read_from_disk == w2.read_from_disk
        assert np.array_equal(w1.pairs_to_reducer, w2.pairs_to_reducer)


def run_equivalence(workers, *, gpus=2, bricks_per_gpu=2, ert_alpha=0.98,
                    placeholders=False, **pool_kwargs):
    r, cam = make_scene(gpus=gpus, ert_alpha=ert_alpha, placeholders=placeholders)
    chunks, ctg = scene_job(r, cam, bricks_per_gpu)
    ref = InProcessExecutor().execute(r._spec(cam), chunks, ctg)
    with SharedMemoryPoolExecutor(workers=workers, **pool_kwargs) as pool:
        got = pool.execute(r._spec(cam), chunks, ctg)
    assert_results_identical(ref, got)


# -- pool vs in-process equivalence (tier-1 smoke set) -----------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_pool_matches_inprocess(workers):
    run_equivalence(workers)


def test_serial_fallback_matches_inprocess():
    run_equivalence(1, serial=True)


def test_pool_matches_with_placeholders_and_no_ert():
    run_equivalence(2, ert_alpha=1.0, placeholders=True)


def test_pool_multi_frame_resident_arena():
    """Frames of an orbit republish nothing and stay bitwise identical."""
    r, _ = make_scene()
    with SharedMemoryPoolExecutor(workers=2) as pool:
        for az in (0.0, 120.0, 240.0):
            cam = orbit_camera(r.volume_shape, azimuth_deg=az, width=64, height=64)
            chunks, ctg = scene_job(r, cam)
            ref = InProcessExecutor().execute(r._spec(cam), chunks, ctg)
            got = pool.execute(r._spec(cam), chunks, ctg)
            assert_results_identical(ref, got)
        assert pool._arena_fingerprint is not None


def test_pool_inline_fallback_when_chunk_outgrows_ring():
    # A ring too small for any chunk's fragments forces the queue path;
    # results must be unchanged.
    run_equivalence(2, ring_capacity=256)


def test_renderer_pool_image_identical():
    r_ref, cam = make_scene()
    img_ref = r_ref.render(cam, mode="exec").image
    vol = r_ref.volume
    with MapReduceVolumeRenderer(
        volume=vol,
        cluster=2,
        render_config=r_ref.render_config,
        executor="pool",
        workers=2,
    ) as r_pool:
        img_pool = r_pool.render(cam, mode="exec").image
        img_pool2 = r_pool.render(cam, mode="exec").image  # warm arena + caches
    assert np.array_equal(img_ref, img_pool)
    assert np.array_equal(img_ref, img_pool2)


# -- full matrix (slow) ------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("gpus,bricks_per_gpu", [(1, 2), (2, 2), (4, 1), (3, 3)])
@pytest.mark.parametrize("ert_alpha", [1.0, 0.98, 0.5])
def test_pool_matches_inprocess_matrix(workers, gpus, bricks_per_gpu, ert_alpha):
    run_equivalence(
        workers, gpus=gpus, bricks_per_gpu=bricks_per_gpu, ert_alpha=ert_alpha
    )


# -- generic (non-render) jobs through the pool ------------------------------
KV = np.dtype([("key", np.int32), ("val", np.float32)])


class ModSquareMapper(Mapper):
    """Synthetic mapper (module-level: must be picklable for the pool)."""

    def __init__(self, max_key):
        self.max_key = max_key

    def map(self, chunk):
        data = chunk.payload()
        pairs = np.empty(len(data), dtype=KV)
        keys = (data.astype(np.int64) % (self.max_key + 1)).astype(np.int32)
        keys[data % 2 == 1] = PLACEHOLDER
        pairs["key"] = keys
        pairs["val"] = data.astype(np.float32) ** 2
        return MapOutput(pairs, work={"n_rays": len(data), "n_samples": 3 * len(data)})


class SumReducer(Reducer):
    def reduce_all(self, pairs):
        keys, starts, _ = run_length_groups(pairs["key"])
        sums = np.add.reduceat(pairs["val"], starts) if len(keys) else np.zeros(0)
        return keys, sums


def test_pool_runs_generic_mapreduce_job():
    rng = np.random.default_rng(7)
    chunks = [
        Chunk(id=i, nbytes=d.nbytes, data=d)
        for i, d in enumerate(
            rng.integers(0, 100, 64).astype(np.int64) for _ in range(5)
        )
    ]
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(3),
        kv=KVSpec(KV),
        max_key=9,
    )
    ref = InProcessExecutor().execute(spec, chunks, [0, 1, 0, 1, 0])
    with SharedMemoryPoolExecutor(workers=2) as pool:
        got = pool.execute(spec, chunks, [0, 1, 0, 1, 0])
    assert_results_identical(ref, got)


class BoomMapper(Mapper):
    def map(self, chunk):
        raise RuntimeError("boom in worker")


def test_pool_propagates_worker_errors_and_resets():
    chunks = [Chunk(id=0, nbytes=8, data=np.zeros(1, np.int64))]
    spec = MapReduceSpec(
        mapper=BoomMapper(),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(1),
        kv=KVSpec(KV),
        max_key=9,
    )
    with SharedMemoryPoolExecutor(workers=1) as pool:
        with pytest.raises(RuntimeError, match="boom in worker"):
            pool.execute(spec, chunks)
        # A failed map task may leave partial fragment runs in its
        # worker's ring, so the pool tears itself down rather than risk
        # serving misaligned bytes; a retry starts from a fresh pool.
        assert not pool.running
        good = MapReduceSpec(
            mapper=ModSquareMapper(9),
            reducer=SumReducer(),
            partitioner=RoundRobinPartitioner(1),
            kv=KVSpec(KV),
            max_key=9,
        )
        data = np.arange(10, dtype=np.int64) * 2
        ref = InProcessExecutor().execute(
            good, [Chunk(id=0, nbytes=data.nbytes, data=data)]
        )
        got = pool.execute(good, [Chunk(id=0, nbytes=data.nbytes, data=data)])
        assert_results_identical(ref, got)


def test_pool_handles_empty_chunk_list():
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(2),
        kv=KVSpec(KV),
        max_key=9,
    )
    ref = InProcessExecutor().execute(spec, [])
    with SharedMemoryPoolExecutor(workers=2) as pool:
        got = pool.execute(spec, [])
    assert_results_identical(ref, got)
    assert got.works == []


def test_pool_rejects_duplicate_chunk_ids():
    d = np.zeros(2, np.int64)
    chunks = [Chunk(id=0, nbytes=d.nbytes, data=d)] * 2
    spec = MapReduceSpec(
        mapper=ModSquareMapper(9),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(1),
        kv=KVSpec(KV),
        max_key=9,
    )
    with SharedMemoryPoolExecutor(workers=1) as pool:
        with pytest.raises(ValueError, match="unique"):
            pool.execute(spec, chunks)


# -- ring buffer -------------------------------------------------------------
def test_ring_roundtrip_and_wraparound():
    with ShmRing.create(capacity=64) as ring:
        # Fill/drain repeatedly with sizes that force the cursor to wrap
        # at misaligned offsets.
        sent = received = b""
        payload = bytes(range(48))
        for i in range(20):
            piece = payload[: 17 + (i * 7) % 30]
            ring.write_bytes(piece, timeout=1.0)
            sent += piece
            got = ring.read_bytes(len(piece), timeout=1.0)
            received += bytes(got)
        assert received == sent
        assert ring.used == 0


def test_ring_records_roundtrip():
    dt = np.dtype([("k", np.int32), ("v", np.float32)])
    arr = np.zeros(10, dtype=dt)
    arr["k"] = np.arange(10)
    arr["v"] = np.linspace(0, 1, 10, dtype=np.float32)
    with ShmRing.create(capacity=37) as ring:  # < arr.nbytes: stream in pieces
        out = []

        def consume():
            for _ in range(len(arr)):
                out.append(ring.read_records(dt.itemsize, dt, timeout=5.0))

        consumer = threading.Thread(target=consume)
        consumer.start()
        # Producer streams record-sized pieces; consumer drains them.
        for rec in arr:
            ring.write_bytes(rec.tobytes(), timeout=5.0)
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert np.array_equal(np.concatenate(out), arr)


def test_ring_blocks_producer_until_consumed():
    with ShmRing.create(capacity=16) as ring:
        ring.write_bytes(b"x" * 16, timeout=1.0)
        t0 = time.monotonic()
        with pytest.raises(RingTimeout):
            ring.write_bytes(b"y", timeout=0.05)
        assert time.monotonic() - t0 >= 0.05
        # Draining unblocks the producer.
        drain = threading.Thread(
            target=lambda: (time.sleep(0.02), ring.read_bytes(16, timeout=1.0))
        )
        drain.start()
        ring.write_bytes(b"y" * 8, timeout=2.0)
        drain.join(timeout=2.0)
        assert bytes(ring.read_bytes(8, timeout=1.0)) == b"y" * 8


def test_ring_validation():
    with ShmRing.create(capacity=8) as ring:
        with pytest.raises(ValueError):
            ring.write_bytes(b"123456789")  # > capacity
        with pytest.raises(ValueError):
            ring.read_bytes(9)
        with pytest.raises(ValueError):
            ring.read_records(6, np.dtype(np.int32))  # not whole records
    with pytest.raises(ValueError):
        ShmRing.create(capacity=0)


def test_ring_attach_and_cross_close():
    ring = ShmRing.create(capacity=128, record_size=24)
    other = ShmRing.attach(ring.name)
    assert other.capacity == 128
    assert other.record_size == 24
    other.write_bytes(b"hello")
    assert bytes(ring.read_bytes(5)) == b"hello"
    name = ring.name
    other.close()  # attachment never unlinks
    assert shm_segment_exists(name)
    ring.close()
    ring.close()  # idempotent
    assert not shm_segment_exists(name)


# -- shared-memory arena -----------------------------------------------------
def test_arena_publish_attach_and_cleanup():
    a = np.arange(12, dtype=np.float32).reshape(3, 4)
    b = np.arange(6, dtype=np.int64)
    arena = ShmArena({"a": a, 7: b})
    assert isinstance(arena.spec, ArenaSpec)
    view = ArenaView(arena.spec)
    assert np.array_equal(view.array("a"), a)
    assert np.array_equal(view.array(7), b)
    assert not view.array("a").flags.writeable  # published data is immutable
    assert "a" in view and "missing" not in view
    name = arena.name
    view.close()
    arena.close()
    arena.close()  # idempotent
    assert not shm_segment_exists(name)


def test_arena_rejects_empty():
    with pytest.raises(ValueError):
        ShmArena({})


def test_pool_releases_all_segments_on_close():
    r, cam = make_scene()
    chunks, ctg = scene_job(r, cam)
    pool = SharedMemoryPoolExecutor(workers=2)
    pool.execute(r._spec(cam), chunks, ctg)
    names = [ring.name for ring in pool._state["rings"]]
    names.append(pool._state["arena"].name)
    pool.close()
    for name in names:
        assert not shm_segment_exists(name), f"leaked segment {name}"
    pool.close()  # idempotent


# -- merge helpers -----------------------------------------------------------
def test_split_runs_checks_counters():
    dt = np.dtype([("pixel", np.int32), ("v", np.float32)])
    pairs = np.zeros(5, dtype=dt)
    runs = split_runs(pairs, [2, 0, 3])
    assert [len(x) for x in runs] == [2, 0, 3]
    with pytest.raises(ValueError):
        split_runs(pairs, [2, 2])


def test_camera_pickle_excludes_ray_grid_cache():
    # The pool pickles a camera per frame; the lazily-built full-viewport
    # direction grid must not ride along.
    import pickle

    cam = orbit_camera((16, 16, 16), width=64, height=64)
    cam.rect_rays_f32(cam.full_rect())  # populate the cache
    assert "_dirs32_grid" in cam.__dict__
    clone = pickle.loads(pickle.dumps(cam))
    assert "_dirs32_grid" not in clone.__dict__
    # The clone still renders identically (cache rebuilt lazily).
    d1, k1 = cam.rect_rays_f32(cam.full_rect())
    d2, k2 = clone.rect_rays_f32(clone.full_rect())
    assert np.array_equal(d1, d2) and np.array_equal(k1, k2)


# -- executor config hygiene (shared-default fix) ----------------------------
def test_executor_configs_are_per_instance():
    assert InProcessExecutor().config is not InProcessExecutor().config
    p1 = SharedMemoryPoolExecutor(workers=1, serial=True)
    p2 = SharedMemoryPoolExecutor(workers=1, serial=True)
    assert p1.config is not p2.config
