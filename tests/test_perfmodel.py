"""Tests for figures of merit, speed-of-light peaks, and the §6.3 analysis."""

import numpy as np
import pytest

from repro.core import MapWork
from repro.perfmodel import (
    CommComputeSplit,
    ScalingPoint,
    compute_vs_communication,
    find_crossover,
    find_sweet_spot,
    fps,
    parallel_efficiency,
    scaling_series,
    speed_of_light,
    speedup,
    voxels_per_second,
)
from repro.sim import accelerator_cluster


def test_fps_vps_basic():
    assert fps(0.5) == 2.0
    assert voxels_per_second(128**3, 0.5) == 128**3 * 2
    with pytest.raises(ValueError):
        fps(0.0)
    with pytest.raises(ValueError):
        voxels_per_second(-1, 1.0)
    with pytest.raises(ValueError):
        voxels_per_second(10, 0.0)


def test_speedup_and_efficiency():
    assert speedup(4.0, 1.0) == 4.0
    assert parallel_efficiency(4.0, 1.0, 4) == pytest.approx(1.0)
    assert parallel_efficiency(4.0, 2.0, 4) == pytest.approx(0.5)
    assert parallel_efficiency(4.0, 1.0, 8, n_base=2) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        parallel_efficiency(1.0, 1.0, 0)
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)


def test_scaling_point_and_series():
    pts = [
        ScalingPoint(1, 4.0, 128**3),
        ScalingPoint(4, 1.0, 128**3),
        ScalingPoint(2, 2.0, 128**3),
    ]
    series = scaling_series(pts)
    assert [s["n_gpus"] for s in series] == [1, 2, 4]
    assert series[-1]["speedup"] == pytest.approx(4.0)
    assert series[-1]["efficiency"] == pytest.approx(1.0)
    assert series[0]["mvps"] == pytest.approx(128**3 / 4.0 / 1e6)
    assert scaling_series([]) == []


def make_works(n_gpus, n_chunks=8, samples=5_000_000, pairs=40_000):
    works = []
    for i in range(n_chunks):
        works.append(
            MapWork(
                chunk_id=i,
                gpu=i % n_gpus,
                upload_bytes=32 << 20,
                n_rays=512 * 512 // n_chunks,
                n_samples=samples,
                pairs_emitted=pairs,
                pairs_to_reducer=np.full(n_gpus, pairs // (2 * n_gpus), dtype=np.int64),
            )
        )
    return works


def test_speed_of_light_positive_and_consistent():
    spec = accelerator_cluster(8)
    peaks = speed_of_light(spec, make_works(8), pair_nbytes=24)
    d = peaks.as_dict()
    for k in ("upload", "map_compute", "download", "sort", "reduce"):
        assert d[k] > 0, k
    assert d["network"] > 0  # 2 nodes exchange fragments
    assert peaks.map_phase == max(
        peaks.upload, peaks.map_compute, peaks.download, peaks.network
    )
    assert peaks.total == pytest.approx(peaks.map_phase + peaks.sort + peaks.reduce)


def test_speed_of_light_single_node_no_network():
    spec = accelerator_cluster(4)
    peaks = speed_of_light(spec, make_works(4), pair_nbytes=24)
    assert peaks.network == 0.0


def test_speed_of_light_lower_bounds_simulation():
    """The simulator can never beat the speed of light."""
    from repro.core import JobConfig, SimClusterExecutor

    spec = accelerator_cluster(8)
    works = make_works(8)
    peaks = speed_of_light(spec, works, pair_nbytes=24)
    outcome, _ = SimClusterExecutor(spec, JobConfig()).execute(works, pair_nbytes=24)
    assert outcome.total_runtime >= peaks.map_phase * 0.999
    assert outcome.breakdown.map >= peaks.map_compute * 0.999


def test_compute_vs_communication_scales():
    """More GPUs → less compute, not-less communication (§6.3's trend)."""
    splits = []
    for n in (2, 8, 32):
        spec = accelerator_cluster(n)
        splits.append(compute_vs_communication(spec, make_works(n, n_chunks=2 * n), 24))
    assert splits[0].compute_seconds > splits[1].compute_seconds > splits[2].compute_seconds


def test_find_crossover():
    splits = [
        CommComputeSplit(2, compute_seconds=1.0, communication_seconds=0.2),
        CommComputeSplit(8, compute_seconds=0.25, communication_seconds=0.3),
        CommComputeSplit(32, compute_seconds=0.06, communication_seconds=0.5),
    ]
    assert find_crossover(splits) == 8
    all_compute = [CommComputeSplit(2, 1.0, 0.1), CommComputeSplit(4, 0.5, 0.2)]
    assert find_crossover(all_compute) is None


def test_find_sweet_spot():
    assert find_sweet_spot({1: 3.0, 2: 1.5, 8: 0.9, 16: 1.2}) == 8
    assert find_sweet_spot({4: 1.0, 8: 1.0}) == 4  # tie → fewer GPUs
    with pytest.raises(ValueError):
        find_sweet_spot({})


def test_comm_compute_split_properties():
    s = CommComputeSplit(8, 0.5, 0.515)
    assert not s.compute_bound
    assert s.ratio == pytest.approx(1.03)
    z = CommComputeSplit(8, 0.0, 1.0)
    assert z.ratio == float("inf")
