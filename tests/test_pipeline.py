"""End-to-end tests of the MapReduce volume renderer."""

import numpy as np
import pytest

from repro.core import JobConfig, TiledPartitioner
from repro.pipeline import MapReduceVolumeRenderer
from repro.render import (
    RenderConfig,
    default_tf,
    max_abs_diff,
    orbit_camera,
    render_reference,
)
from repro.sim import accelerator_cluster
from repro.volume import make_dataset

VOL = make_dataset("supernova", (24, 24, 24))
CAM = orbit_camera(VOL.shape, azimuth_deg=40, elevation_deg=25, width=48, height=48)
CFG = RenderConfig(dt=0.8, ert_alpha=1.0)


def renderer(n_gpus=2, **kw):
    return MapReduceVolumeRenderer(
        volume=VOL, cluster=n_gpus, tf=default_tf(), render_config=CFG, **kw
    )


def test_exec_render_matches_reference():
    """The full MapReduce pipeline reproduces the single-pass image."""
    ref = render_reference(VOL, CAM, default_tf(), CFG)
    for n_gpus in (1, 2, 4):
        res = renderer(n_gpus).render(CAM, mode="exec", bricks_per_gpu=2)
        assert res.image is not None
        assert max_abs_diff(res.image, ref.image) < 1e-4, f"{n_gpus} GPUs"
        assert res.n_gpus == n_gpus
        assert res.n_bricks >= n_gpus


def test_exec_render_out_of_core_same_image():
    """Streaming bricks through loaders changes nothing in the output."""
    ref = renderer(2).render(CAM, mode="exec")
    ooc = renderer(2).render(CAM, mode="exec", out_of_core=True)
    assert max_abs_diff(ooc.image, ref.image) == 0.0


def test_exec_render_procedural_field_out_of_core():
    """A renderer with only a field (no in-core volume) still renders."""
    from repro.volume.datasets import supernova_field

    r = MapReduceVolumeRenderer(
        volume=None,
        volume_shape=VOL.shape,
        field=supernova_field,
        cluster=2,
        tf=default_tf(),
        render_config=CFG,
    )
    with pytest.raises(ValueError):
        r.render(CAM, mode="exec")  # in-core render without volume
    res = r.render(CAM, mode="exec", out_of_core=True)
    ref = renderer(2).render(CAM, mode="exec")
    assert max_abs_diff(res.image, ref.image) < 1e-4


def test_both_mode_attaches_timing():
    res = renderer(2).render(CAM, mode="both")
    assert res.image is not None
    assert res.outcome is not None
    assert res.runtime > 0
    sb = res.outcome.breakdown
    assert sb.total == pytest.approx(res.runtime, rel=1e-9)
    assert res.stats.breakdown is sb


def test_sim_mode_runs_without_volume_data():
    from repro.volume.datasets import skull_field

    r = MapReduceVolumeRenderer(
        volume=None,
        volume_shape=(256, 256, 256),
        field=skull_field,
        cluster=8,
        tf=default_tf(),
        render_config=RenderConfig(dt=0.5),
    )
    res = r.render(orbit_camera((256,) * 3, width=512, height=512), mode="sim")
    assert res.image is None
    assert res.outcome.total_runtime > 0
    assert res.outcome.breakdown.map > 0


def test_sim_runtime_decreases_with_gpus_for_large_volume():
    from repro.volume.datasets import supernova_field

    times = {}
    for n in (1, 4):
        r = MapReduceVolumeRenderer(
            volume=None,
            volume_shape=(256, 256, 256),
            field=supernova_field,
            cluster=n,
            tf=default_tf(),
        )
        cam = orbit_camera((256,) * 3, width=512, height=512)
        times[n] = r.render(cam, mode="sim", bricks_per_gpu=2).runtime
    assert times[4] < times[1]


def test_render_mode_validation():
    with pytest.raises(ValueError):
        renderer().render(CAM, mode="warp")


def test_renderer_requires_shape_or_volume():
    with pytest.raises(ValueError):
        MapReduceVolumeRenderer(volume=None)


def test_oversized_brick_rejected():
    spec = accelerator_cluster(1).with_gpu(vram_bytes=1024)
    r = MapReduceVolumeRenderer(volume=VOL, cluster=spec, render_config=CFG)
    with pytest.raises(MemoryError):
        r.render(CAM, mode="exec", bricks_per_gpu=1)


def test_custom_partitioner_same_image():
    """§6.1 pluggability: swapping the partitioner leaves the image intact."""
    ref = renderer(4).render(CAM, mode="exec")
    tiled = MapReduceVolumeRenderer(
        volume=VOL,
        cluster=4,
        tf=default_tf(),
        render_config=CFG,
        partitioner_factory=lambda n: TiledPartitioner(n, CAM.width, CAM.height, tile=16),
    ).render(CAM, mode="exec")
    assert max_abs_diff(tiled.image, ref.image) == 0.0


def test_job_config_flows_to_sim():
    cfg = JobConfig(reduce_on="gpu", sort_on="gpu")
    res = MapReduceVolumeRenderer(
        volume=VOL, cluster=2, tf=default_tf(), render_config=CFG, job_config=cfg
    ).render(CAM, mode="both")
    assert res.outcome.sort_device == "gpu"
