"""Hypothesis property tests over the whole pipeline.

These randomise the *inputs* (volume content, brick shapes, camera
angles, reducer counts) and assert the structural invariants the system
is built on.  They complement the fixed-case tests by exploring corner
geometry (1-voxel bricks, extreme aspect ratios, off-axis views).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InProcessExecutor, RoundRobinPartitioner
from repro.pipeline import MapReduceVolumeRenderer
from repro.render import (
    RenderConfig,
    default_tf,
    grayscale_tf,
    max_abs_diff,
    orbit_camera,
    render_reference,
)
from repro.volume import BrickGrid, Volume

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def random_volume(rng, shape):
    """Smooth random field: random low-res noise upsampled by repetition."""
    coarse = rng.uniform(0, 1, tuple(max(s // 3, 1) for s in shape)).astype(np.float32)
    reps = [int(np.ceil(s / c)) for s, c in zip(shape, coarse.shape)]
    data = np.tile(coarse, reps)[: shape[0], : shape[1], : shape[2]]
    return Volume(np.ascontiguousarray(data))


@given(
    seed=st.integers(0, 2**31 - 1),
    shape=st.tuples(st.integers(6, 18), st.integers(6, 18), st.integers(6, 18)),
    brick=st.tuples(st.integers(2, 9), st.integers(2, 9), st.integers(2, 9)),
    az=st.floats(0, 360),
    el=st.floats(-75, 75),
)
@SLOW
def test_any_bricking_any_view_matches_reference(seed, shape, brick, az, el):
    """THE invariant, randomised: bricked fragments composite to the
    single-pass image for arbitrary volumes, brickings, and views."""
    rng = np.random.default_rng(seed)
    v = random_volume(rng, shape)
    cam = orbit_camera(v.shape, azimuth_deg=az, elevation_deg=el, width=24, height=24)
    cfg = RenderConfig(dt=1.1, ert_alpha=1.0)
    tf = grayscale_tf(max_alpha=0.6)
    ref = render_reference(v, cam, tf, cfg)
    from tests.test_raycast import render_bricked

    grid = BrickGrid(v.shape, brick, ghost=1)
    img, _, _ = render_bricked(v, grid, cam, tf, cfg)
    assert max_abs_diff(img, ref.image) < 1e-4


@given(
    seed=st.integers(0, 2**31 - 1),
    n_gpus=st.integers(1, 6),
)
@SLOW
def test_pipeline_reducer_count_invariance(seed, n_gpus):
    """The number of reducers must never change the image."""
    rng = np.random.default_rng(seed)
    v = random_volume(rng, (12, 12, 12))
    cam = orbit_camera(v.shape, width=24, height=24)
    cfg = RenderConfig(dt=1.0, ert_alpha=1.0)
    base = MapReduceVolumeRenderer(
        volume=v, cluster=1, tf=default_tf(), render_config=cfg
    ).render(cam)
    multi = MapReduceVolumeRenderer(
        volume=v, cluster=n_gpus, tf=default_tf(), render_config=cfg
    ).render(cam)
    assert max_abs_diff(multi.image, base.image) < 1e-4


@given(seed=st.integers(0, 2**31 - 1), threshold=st.integers(1, 50))
@settings(max_examples=20, deadline=None)
def test_send_threshold_never_changes_results(seed, threshold):
    """Streaming granularity is a pure performance knob."""
    from repro.core import JobConfig

    rng = np.random.default_rng(seed)
    v = random_volume(rng, (10, 10, 10))
    cam = orbit_camera(v.shape, width=16, height=16)
    cfg = RenderConfig(dt=1.0, ert_alpha=1.0)
    imgs = []
    for thr in (threshold, 1 << 16):
        res = MapReduceVolumeRenderer(
            volume=v,
            cluster=2,
            tf=default_tf(),
            render_config=cfg,
            job_config=JobConfig(send_threshold_pairs=thr),
        ).render(cam)
        imgs.append(res.image)
    assert np.array_equal(imgs[0], imgs[1])


@given(
    keys=st.lists(st.integers(0, 99), min_size=1, max_size=200),
    n_red=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_partition_preserves_every_pair_exactly_once(keys, n_red):
    """Conservation: routing loses nothing and duplicates nothing."""
    p = RoundRobinPartitioner(n_red)
    karr = np.asarray(keys, dtype=np.int64)
    dests = p.partition(karr)
    total = sum(int(np.count_nonzero(dests == r)) for r in range(n_red))
    assert total == len(keys)
    # Each key goes to exactly the reducer the modulo says.
    assert np.array_equal(dests, karr % n_red)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_fragment_alpha_bounded_by_reference_alpha(seed):
    """Per-pixel accumulated alpha of the distributed render equals the
    reference's (alpha is view-transport, independent of grouping)."""
    rng = np.random.default_rng(seed)
    v = random_volume(rng, (10, 10, 10))
    cam = orbit_camera(v.shape, width=16, height=16)
    cfg = RenderConfig(dt=1.0, ert_alpha=1.0)
    tf = grayscale_tf()
    ref = render_reference(v, cam, tf, cfg)
    res = MapReduceVolumeRenderer(
        volume=v, cluster=3, tf=tf, render_config=cfg
    ).render(cam)
    assert np.allclose(res.image[..., 3], ref.image[..., 3], atol=1e-5)
    assert res.image[..., 3].max() <= 1.0 + 1e-6


@given(
    shape=st.tuples(st.integers(4, 20), st.integers(4, 20), st.integers(4, 20)),
    brick=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_total_payload_at_least_volume(shape, brick):
    """Ghost shells only ever add bytes."""
    grid = BrickGrid(shape, brick, ghost=1)
    assert grid.total_payload_bytes() >= int(np.prod(shape)) * 4
    zero_ghost = BrickGrid(shape, brick, ghost=0)
    assert zero_ghost.total_payload_bytes() == int(np.prod(shape)) * 4
