"""Tests for the ray-cast map kernel, including the bricked-vs-reference
exact-equality invariant that validates the whole distributed design."""

import numpy as np
import pytest

from repro.render import (
    Camera,
    RenderConfig,
    composite_fragments,
    concat_fragments,
    default_tf,
    drop_placeholders,
    grayscale_tf,
    max_abs_diff,
    orbit_camera,
    psnr,
    raycast_brick,
    render_reference,
    trilinear_sample,
)
from repro.volume import BrickGrid, Volume, make_dataset


def render_bricked(volume, grid, camera, tf, config):
    """Ray cast every brick independently and composite the fragments."""
    parts, stats = [], []
    for b in grid:
        frags, st = raycast_brick(
            data=grid.extract(volume, b),
            data_lo=b.data_lo,
            core_lo=b.lo,
            core_hi=b.hi,
            volume_shape=volume.shape,
            camera=camera,
            tf=tf,
            config=config,
        )
        parts.append(frags)
        stats.append(st)
    frags = concat_fragments(parts)
    flat = composite_fragments(drop_placeholders(frags), camera.pixel_count)
    return flat.reshape(camera.height, camera.width, 4), frags, stats


# -- trilinear sampling -----------------------------------------------------
def test_trilinear_exact_at_voxel_centers():
    data = np.arange(27, dtype=np.float32).reshape(3, 3, 3)
    pos = np.array([[1.5, 1.5, 1.5], [0.5, 0.5, 0.5], [2.5, 2.5, 2.5]])
    got = trilinear_sample(data, pos)
    assert got[0] == pytest.approx(data[1, 1, 1])
    assert got[1] == pytest.approx(data[0, 0, 0])
    assert got[2] == pytest.approx(data[2, 2, 2])


def test_trilinear_midpoint_average():
    data = np.zeros((2, 2, 2), dtype=np.float32)
    data[1] = 1.0  # value depends only on x
    got = trilinear_sample(data, np.array([[1.0, 1.0, 1.0]]))
    assert got[0] == pytest.approx(0.5)


def test_trilinear_clamps_at_edges():
    data = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
    got = trilinear_sample(data, np.array([[-5.0, -5.0, -5.0], [9.0, 9.0, 9.0]]))
    assert got[0] == pytest.approx(data[0, 0, 0])
    assert got[1] == pytest.approx(data[1, 1, 1])


def test_trilinear_linear_along_axis():
    data = np.zeros((4, 2, 2), dtype=np.float32)
    data[:, :, :] = np.arange(4, dtype=np.float32)[:, None, None]
    xs = np.linspace(0.5, 3.5, 13)
    pos = np.stack([xs, np.full_like(xs, 1.0), np.full_like(xs, 1.0)], axis=1)
    got = trilinear_sample(data, pos)
    assert np.allclose(got, xs - 0.5, atol=1e-6)


# -- render config ------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        RenderConfig(dt=0.0)
    with pytest.raises(ValueError):
        RenderConfig(ert_alpha=0.0)
    with pytest.raises(ValueError):
        RenderConfig(alpha_eps=-1.0)


# -- kernel basics --------------------------------------------------------------
def test_empty_volume_emits_nothing():
    v = Volume(np.zeros((16, 16, 16), np.float32))
    cam = orbit_camera(v.shape, width=32, height=32)
    frags, stats = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, grayscale_tf()
    )
    assert len(frags) == 0
    assert stats.n_kept == 0
    assert stats.n_samples > 0  # rays marched but found nothing


def test_uniform_volume_covers_projection():
    v = Volume(np.full((16, 16, 16), 0.8, np.float32))
    cam = orbit_camera(v.shape, width=32, height=32)
    frags, stats = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, grayscale_tf()
    )
    assert len(frags) > 0
    assert stats.n_kept == len(frags)
    assert np.all(frags["a"] > 0)
    # Keys must be valid pixel indices.
    assert frags["pixel"].min() >= 0
    assert frags["pixel"].max() < cam.pixel_count


def test_placeholder_emission_mode():
    """Paper restriction: every GPU thread emits a key-value pair."""
    v = Volume(np.zeros((16, 16, 16), np.float32))
    v.data[4:12, 4:12, 4:12] = 0.9
    cam = orbit_camera(v.shape, width=32, height=32)
    cfg = RenderConfig(emit_placeholders=True)
    frags, stats = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, grayscale_tf(), cfg
    )
    assert len(frags) == stats.n_rays  # one emission per thread
    real = drop_placeholders(frags)
    assert len(real) == stats.n_kept
    assert 0 < len(real) < len(frags)


def test_depth_is_entry_distance():
    v = Volume(np.full((16, 16, 16), 0.9, np.float32))
    cam = Camera(eye=(8.0, -50.0, 8.0), center=(8.0, 8.0, 8.0), width=16, height=16)
    frags, _ = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, grayscale_tf()
    )
    # Entry into y=0 plane from y=-50 is ~50 units for central rays.
    center = frags[np.abs(frags["depth"] - 50.0) < 2.0]
    assert len(center) > 0


def test_early_termination_reduces_samples():
    v = Volume(np.full((32, 32, 32), 1.0, np.float32))
    cam = orbit_camera(v.shape, width=32, height=32)
    tf = grayscale_tf(max_alpha=0.99)
    _, ert = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, tf,
        RenderConfig(ert_alpha=0.9),
    )
    _, full = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, tf,
        RenderConfig(ert_alpha=1.0),
    )
    assert ert.n_samples < full.n_samples


# -- THE invariant: bricked == reference ------------------------------------
@pytest.mark.parametrize("brick_size", [8, 10, 16])
@pytest.mark.parametrize("dataset", ["skull", "supernova"])
def test_bricked_render_equals_reference(dataset, brick_size):
    """Union of per-brick fragments composites to the single-pass image."""
    v = make_dataset(dataset, (24, 24, 24))
    cam = orbit_camera(v.shape, azimuth_deg=35, elevation_deg=25, width=48, height=48)
    tf = default_tf()
    cfg = RenderConfig(dt=0.7, ert_alpha=1.0)  # ERT off for exactness
    ref = render_reference(v, cam, tf, cfg)
    grid = BrickGrid(v.shape, brick_size, ghost=1)
    img, _, _ = render_bricked(v, grid, cam, tf, cfg)
    assert max_abs_diff(img, ref.image) < 1e-4


def test_bricked_render_anisotropic_volume_and_bricks():
    v = make_dataset("plume", (16, 16, 40))
    cam = orbit_camera(v.shape, azimuth_deg=60, elevation_deg=10, width=40, height=40)
    tf = default_tf()
    cfg = RenderConfig(dt=0.5, ert_alpha=1.0)
    ref = render_reference(v, cam, tf, cfg)
    grid = BrickGrid(v.shape, (8, 16, 13), ghost=1)
    img, _, _ = render_bricked(v, grid, cam, tf, cfg)
    assert max_abs_diff(img, ref.image) < 1e-4


def test_bricked_render_with_ert_close_to_reference():
    """With ERT on, the bricked image differs only within (1−ert_alpha)."""
    v = make_dataset("supernova", (24, 24, 24))
    cam = orbit_camera(v.shape, width=48, height=48)
    tf = default_tf()
    cfg = RenderConfig(dt=0.7, ert_alpha=0.98)
    ref = render_reference(v, cam, tf, cfg)
    grid = BrickGrid(v.shape, 12, ghost=1)
    img, _, _ = render_bricked(v, grid, cam, tf, cfg)
    assert psnr(img, ref.image) > 35.0


def test_view_angle_sweep_stays_consistent():
    """The invariant holds across camera angles (catches ownership bugs)."""
    v = make_dataset("skull", (20, 20, 20))
    tf = default_tf()
    cfg = RenderConfig(dt=0.9, ert_alpha=1.0)
    grid = BrickGrid(v.shape, 10, ghost=1)
    for az, el in [(0, 0), (90, 0), (45, 45), (180, -30), (270, 80)]:
        cam = orbit_camera(v.shape, azimuth_deg=az, elevation_deg=el, width=32, height=32)
        ref = render_reference(v, cam, tf, cfg)
        img, _, _ = render_bricked(v, grid, cam, tf, cfg)
        assert max_abs_diff(img, ref.image) < 1e-4, f"az={az} el={el}"


def test_fragment_counts_scale_with_brick_count():
    """More bricks → more fragments for the same image (the paper's
    O(X) lower / O(BX) upper bound intuition)."""
    v = make_dataset("supernova", (24, 24, 24))
    cam = orbit_camera(v.shape, width=48, height=48)
    tf = default_tf()
    cfg = RenderConfig(dt=0.7, ert_alpha=1.0)
    counts = {}
    for bs in (24, 12, 6):
        grid = BrickGrid(v.shape, bs, ghost=1)
        _, frags, _ = render_bricked(v, grid, cam, tf, cfg)
        counts[bs] = len(frags)
    assert counts[24] <= counts[12] <= counts[6]
    assert counts[6] > counts[24]


def test_reference_stats_populated():
    v = make_dataset("skull", (16, 16, 16))
    cam = orbit_camera(v.shape, width=32, height=32)
    ref = render_reference(v, cam, default_tf())
    assert ref.stats.n_rays >= ref.stats.n_active_rays > 0
    assert ref.stats.n_samples > 0
    assert ref.image.shape == (32, 32, 4)
