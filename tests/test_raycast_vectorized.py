"""Equivalence suite for the blocked vectorized ray marcher.

The blocked kernel in ``repro.render.raycast`` must produce the same
fragments and the same :class:`MapStats` counters as a straight-line
per-sample reference marcher that shares only the ownership-interval
and geometry helpers.  Hypothesis drives the comparison across random
bricks, cameras, step sizes, block sizes, shading, early-ray-termination
and placeholder emission.

Early-ray-termination semantics: the kernel checks the accumulated
alpha at block boundaries (ERT at block granularity), so the reference
marcher does the same — ``block_size=1`` is exactly classic per-step
termination.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sort as core_sort
from repro.render import (
    MapStats,
    RenderConfig,
    composite_pixel_fragments,
    default_tf,
    empty_fragments,
    grayscale_tf,
    make_fragments,
    opacity_correction,
    orbit_camera,
    raycast_brick,
    segmented_exclusive_cumprod,
    trilinear_sample,
)
from repro.render.fragments import PLACEHOLDER_KEY
from repro.render.geometry import dual_box_intersect_f32
from repro.render.raycast import _sample_intervals
from repro.volume import BrickGrid, Volume

F32 = np.float32


def reference_marcher(data, data_lo, core_lo, core_hi, volume_shape, camera, tf, config):
    """Straight-line per-sample marcher — one ray, one step at a time.

    Shares the footprint, the slab intervals, and the per-sample
    primitives (trilinear / transfer / opacity correction) with the
    blocked kernel, but accumulates sequentially in plain Python so any
    vectorization bug in the kernel shows up as a mismatch.
    """
    stats = MapStats()
    core_lo_w = np.asarray(core_lo, np.float64)
    core_hi_w = np.asarray(core_hi, np.float64)
    corners = np.array(
        [
            [
                (core_lo_w[0], core_hi_w[0])[(c >> 0) & 1],
                (core_lo_w[1], core_hi_w[1])[(c >> 1) & 1],
                (core_lo_w[2], core_hi_w[2])[(c >> 2) & 1],
            ]
            for c in range(8)
        ]
    )
    rect = camera.brick_rect(corners, pad_to_block=config.pad_to_block)
    if rect.empty:
        return empty_fragments(), stats
    dirs, keys = camera.rect_rays_f32(rect)
    n = len(keys)
    stats.n_rays = n
    eye = np.asarray(camera.eye, np.float64)
    tn_b, tf_b, hit_b, tn_v, _, hit_v = dual_box_intersect_f32(
        eye, dirs, core_lo_w, core_hi_w, np.zeros(3), volume_shape
    )
    active = hit_b & hit_v & (tf_b > tn_b)
    stats.n_active_rays = int(active.sum())
    dt = F32(config.dt)
    base_w = (eye - np.asarray(data_lo, np.float64)).astype(F32)

    pix = np.full(n, PLACEHOLDER_KEY, np.int32)
    depth = np.zeros(n, F32)
    rgba = np.zeros((n, 4), F32)
    kept = np.zeros(n, bool)

    for i in range(n):
        if not active[i]:
            continue
        kf, cnt = _sample_intervals(
            tn_b[i : i + 1], tf_b[i : i + 1], tn_v[i : i + 1], dt
        )
        kf, cnt = int(kf[0]), int(cnt[0])
        if cnt == 0:
            continue
        t0 = F32(tn_v[i] + (F32(kf) + F32(0.5)) * dt)
        acc_rgb = np.zeros(3, F32)
        acc_a = F32(0.0)
        for j in range(cnt):
            t = F32(t0 + np.int32(j) * dt)
            pos = base_w + t * dirs[i]
            stats.n_samples += config.fetches_per_sample
            val = trilinear_sample(data, pos[None, :])
            srgba = tf.lookup(val)[0].copy()
            if config.shading:
                from repro.render.shading import central_gradient, shade_phong

                grads = central_gradient(data, pos[None, :])
                srgba[:3] = shade_phong(srgba[None, :3], grads, dirs[i : i + 1])[0]
            a = opacity_correction(srgba[3:4], config.dt)[0]
            one_m = F32(1.0) - acc_a
            acc_rgb = acc_rgb + (one_m * a) * srgba[:3]
            acc_a = acc_a + one_m * a
            # ERT at block granularity: check on block boundaries only.
            if (
                config.ert_alpha < 1.0
                and (j + 1) % config.block_size == 0
                and acc_a >= config.ert_alpha
            ):
                break
        depth[i] = t0
        if acc_a > config.alpha_eps:
            pix[i] = keys[i]
            rgba[i, :3] = acc_rgb
            rgba[i, 3] = acc_a
            kept[i] = True

    stats.n_kept = int(kept.sum())
    stats.n_emitted = n if config.emit_placeholders else stats.n_kept
    if config.emit_placeholders:
        return make_fragments(pix, np.where(kept, depth, F32(0.0)), rgba), stats
    sel = np.nonzero(kept)[0]
    return make_fragments(pix[sel], depth[sel], rgba[sel]), stats


def assert_equivalent(vol, brick, camera, tf, config, atol=2e-4):
    data = (
        vol.region(brick.data_lo, brick.data_hi)
        if brick is not None
        else vol.data
    )
    data_lo = brick.data_lo if brick is not None else (0, 0, 0)
    core_lo = brick.lo if brick is not None else (0, 0, 0)
    core_hi = brick.hi if brick is not None else vol.shape
    got, gst = raycast_brick(
        data, data_lo, core_lo, core_hi, vol.shape, camera, tf, config
    )
    want, wst = reference_marcher(
        data, data_lo, core_lo, core_hi, vol.shape, camera, tf, config
    )
    # MapStats counter equality — exact.
    assert gst.n_rays == wst.n_rays
    assert gst.n_active_rays == wst.n_active_rays
    assert gst.n_samples == wst.n_samples
    assert gst.n_emitted == wst.n_emitted
    assert gst.n_kept == wst.n_kept
    assert len(got) == len(want)
    if len(got) == 0:
        return
    assert np.array_equal(got["pixel"], want["pixel"])
    assert np.array_equal(got["depth"], want["depth"])  # closed form, exact
    for ch in ("r", "g", "b", "a"):
        np.testing.assert_allclose(got[ch], want[ch], atol=atol)


def make_volume(rng, shape):
    return Volume(rng.uniform(0.0, 1.0, shape).astype(np.float32))


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_blocked_matches_reference_full_volume(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    vol = make_volume(rng, (14, 14, 14))
    cam = orbit_camera(
        vol.shape,
        azimuth_deg=data.draw(st.floats(0, 360)),
        elevation_deg=data.draw(st.floats(-80, 80)),
        width=24,
        height=24,
    )
    config = RenderConfig(
        dt=data.draw(st.sampled_from([0.5, 0.8, 1.0, 1.35])),
        ert_alpha=data.draw(st.sampled_from([1.0, 0.9])),
        block_size=data.draw(st.sampled_from([1, 2, 3, 8, 64])),
        emit_placeholders=data.draw(st.booleans()),
    )
    assert_equivalent(vol, None, cam, default_tf(), config)


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_blocked_matches_reference_random_brick(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    vol = make_volume(rng, (16, 16, 16))
    grid = BrickGrid(vol.shape, data.draw(st.sampled_from([6, 8, 11])), ghost=1)
    brick = grid.brick(data.draw(st.integers(0, len(list(grid)) - 1)))
    cam = orbit_camera(
        vol.shape,
        azimuth_deg=data.draw(st.floats(0, 360)),
        elevation_deg=data.draw(st.floats(-60, 60)),
        width=24,
        height=24,
    )
    config = RenderConfig(
        dt=data.draw(st.sampled_from([0.6, 1.0])),
        ert_alpha=data.draw(st.sampled_from([1.0, 0.9])),
        block_size=data.draw(st.sampled_from([1, 4, 32])),
    )
    assert_equivalent(vol, brick, cam, default_tf(), config)


@pytest.mark.parametrize("block_size", [1, 2, 8, 64])
def test_blocked_matches_reference_shaded(block_size):
    rng = np.random.default_rng(7)
    vol = make_volume(rng, (12, 12, 12))
    cam = orbit_camera(vol.shape, azimuth_deg=40, elevation_deg=25, width=20, height=20)
    config = RenderConfig(
        dt=0.8, ert_alpha=1.0, shading=True, block_size=block_size
    )
    assert_equivalent(vol, None, cam, default_tf(), config, atol=5e-4)


def test_block_size_one_equals_per_step_ert():
    """block_size=1 is classic per-step termination: n_samples is minimal."""
    rng = np.random.default_rng(3)
    vol = Volume(np.full((24, 24, 24), 0.95, np.float32))
    cam = orbit_camera(vol.shape, width=24, height=24)
    tf = grayscale_tf(max_alpha=0.99)
    samples = {}
    for bs in (1, 4, 16, 64):
        _, stats = raycast_brick(
            vol.data, (0, 0, 0), (0, 0, 0), vol.shape, vol.shape, cam, tf,
            RenderConfig(dt=0.5, ert_alpha=0.9, block_size=bs),
        )
        samples[bs] = stats.n_samples
    assert samples[1] <= samples[4] <= samples[16] <= samples[64]
    # Termination still beats no termination while blocks are shorter
    # than the ray windows (at 64 a whole crossing can fit one block).
    _, full = raycast_brick(
        vol.data, (0, 0, 0), (0, 0, 0), vol.shape, vol.shape, cam, tf,
        RenderConfig(dt=0.5, ert_alpha=1.0),
    )
    assert samples[16] < full.n_samples
    assert samples[64] <= full.n_samples


def test_empty_space_skip_does_not_change_image():
    """The corner-max skip table must be invisible in the output: a volume
    with large exactly-transparent regions renders identically whether or
    not the table is built (forced off via a tiny expected sample count is
    impractical, so compare against the reference marcher instead)."""
    rng = np.random.default_rng(11)
    data = np.zeros((16, 16, 16), np.float32)
    data[4:12, 4:12, 4:12] = rng.uniform(0.0, 1.0, (8, 8, 8)).astype(np.float32)
    vol = Volume(data)
    cam = orbit_camera(vol.shape, azimuth_deg=15, elevation_deg=35, width=24, height=24)
    config = RenderConfig(dt=0.7, ert_alpha=1.0, block_size=16)
    assert_equivalent(vol, None, cam, default_tf(), config)


# -- the shared segmented scan ------------------------------------------------
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_segmented_exclusive_cumprod_matches_loop(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    n = data.draw(st.integers(1, 200))
    values = rng.uniform(0.0, 1.2, n).astype(np.float32)
    seg_start = rng.uniform(0, 1, n) < 0.3
    seg_start[0] = True
    got = segmented_exclusive_cumprod(values, seg_start)
    run = 1.0
    for i in range(n):
        if seg_start[i]:
            run = 1.0
        assert got[i] == pytest.approx(run, rel=1e-5, abs=1e-7), i
        run *= float(values[i])


def test_composite_pixel_fragments_empty():
    assert np.array_equal(
        composite_pixel_fragments(empty_fragments()), np.zeros(4, np.float32)
    )


# -- the counting-scatter order and its fallback ------------------------------
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_stable_counting_order_matches_argsort(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    n = data.draw(st.integers(0, 400))
    keys = rng.integers(0, 37, n).astype(np.int32)
    got = core_sort.stable_counting_order(keys, 37)
    assert np.array_equal(got, np.argsort(keys, kind="stable"))


def test_stable_counting_order_fallback(monkeypatch):
    """Without SciPy the order comes from NumPy's stable argsort."""
    monkeypatch.setattr(core_sort, "_sp_tools", None)
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 64, 500).astype(np.int64)
    got = core_sort.stable_counting_order(keys, 64)
    assert np.array_equal(got, np.argsort(keys, kind="stable"))
