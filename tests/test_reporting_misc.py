"""Tests for report formatting, trace utilities, and small helpers."""

import numpy as np
import pytest

from repro.bench import format_series, format_table
from repro.core import JobStats, MapWork, SimClusterExecutor
from repro.render.raycast import MapStats
from repro.sim import ClusterRuntime, Trace, accelerator_cluster
from repro.sim import trace as T


# -- table formatting -------------------------------------------------------
def test_format_table_alignment_and_title():
    rows = [
        {"name": "map", "seconds": 0.12345},
        {"name": "reduce", "seconds": 12345.6},
    ]
    out = format_table(rows, title="Stages")
    lines = out.splitlines()
    assert lines[0] == "Stages"
    assert "name" in lines[1] and "seconds" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "0.1234" in out or "0.1235" in out
    assert "12,346" in out  # thousands separator for big floats


def test_format_table_empty_and_column_selection():
    assert "(no rows)" in format_table([])
    assert format_table([], title="T").startswith("T")
    rows = [{"a": 1, "b": 2}]
    out = format_table(rows, columns=["b"])
    assert "b" in out and "a" not in out


def test_format_series():
    s = format_series("128^3", [1, 2, 4], [0.5, 0.25, 0.125], "runtime")
    assert s.startswith("128^3 [runtime]:")
    assert "1→0.5" in s and "4→0.125" in s


# -- trace utilities ---------------------------------------------------------
def test_trace_gantt_rows_sorted():
    tr = Trace()
    tr.record(T.CAT_KERNEL, "gpu1", 2.0, 3.0)
    tr.record(T.CAT_H2D, "gpu0", 0.0, 1.0)
    tr.record(T.CAT_NET, "node0->node1", 0.5, 2.5, nbytes=100)
    rows = tr.gantt_rows()
    assert rows[0][0] == "gpu0"
    assert [r[2] for r in rows] == sorted(r[2] for r in rows)
    assert tr.bytes_moved(T.CAT_NET) == 100


def test_trace_by_category():
    tr = Trace()
    tr.record(T.CAT_KERNEL, "gpu0", 0, 1)
    tr.record(T.CAT_KERNEL, "gpu1", 1, 2)
    tr.record(T.CAT_SORT, "node0", 2, 3)
    cats = tr.by_category()
    assert len(cats[T.CAT_KERNEL]) == 2
    assert len(cats[T.CAT_SORT]) == 1


# -- utilization report --------------------------------------------------------
def test_utilization_report_fresh_cluster_zero():
    rt = ClusterRuntime(accelerator_cluster(2))
    rep = rt.utilization_report()
    assert set(rep) == {"gpu_engines", "nic_tx", "nic_rx", "cpus", "disks"}
    assert all(v == 0.0 for v in rep.values())


def test_utilization_report_after_job():
    works = [
        MapWork(i, i % 4, 1 << 20, 4096, 2_000_000, 4000, np.full(4, 1000, np.int64))
        for i in range(8)
    ]
    _, cluster = SimClusterExecutor(accelerator_cluster(4)).execute(works, 24)
    rep = cluster.utilization_report()
    assert 0 < rep["gpu_engines"] <= 1.0
    assert 0 <= rep["cpus"] <= 1.0
    assert rep["disks"] == 0.0  # no disk reads charged


# -- small stats helpers --------------------------------------------------------
def test_mapstats_merge():
    a = MapStats(1, 2, 3, 4, 5)
    b = MapStats(10, 20, 30, 40, 50)
    m = a.merge(b)
    assert (m.n_rays, m.n_active_rays, m.n_samples, m.n_emitted, m.n_kept) == (
        11,
        22,
        33,
        44,
        55,
    )


def test_jobstats_dict_and_discard_fraction():
    st = JobStats()
    st.add_map({"n_rays": 100, "n_samples": 1000}, emitted=100, kept=75)
    assert st.discard_fraction == pytest.approx(0.25)
    d = st.as_dict()
    assert d["n_chunks"] == 1 and d["n_rays"] == 100
    assert "stage_breakdown" not in d  # no breakdown attached yet
    empty = JobStats()
    assert empty.discard_fraction == 0.0
