"""Tests that the streaming scheduler actually overlaps work — the
library's central performance claim ("network communication, CPU/GPU
data transfers, disk access, and GPU kernel execution ... all happen
concurrently")."""

import numpy as np
import pytest

from repro.core import JobConfig, MapWork, SimClusterExecutor
from repro.sim import accelerator_cluster
from repro.sim import trace as T


def make_works(n_gpus, chunks_per_gpu=4, pairs=200_000):
    works = []
    for g in range(n_gpus):
        for c in range(chunks_per_gpu):
            works.append(
                MapWork(
                    chunk_id=g * chunks_per_gpu + c,
                    gpu=g,
                    upload_bytes=64 << 20,
                    n_rays=64 * 64,
                    n_samples=8_000_000,
                    pairs_emitted=pairs,
                    pairs_to_reducer=np.full(n_gpus, pairs // (2 * n_gpus), np.int64),
                )
            )
    return works


def run(n_gpus, **cfg):
    spec = accelerator_cluster(n_gpus)
    return SimClusterExecutor(spec, JobConfig(**cfg)).execute(
        make_works(n_gpus), pair_nbytes=24
    )


def spans_overlap(a, b):
    return a.start < b.end and b.start < a.end


def test_network_sends_overlap_kernels():
    """Some NIC transfer must be in flight while a kernel runs."""
    outcome, cluster = run(8)  # 2 nodes → internode traffic
    tr = cluster.trace
    kernels = [s for s in tr.spans if s.category == T.CAT_KERNEL]
    nets = [s for s in tr.spans if s.category == T.CAT_NET and "->" in s.resource]
    assert nets, "no internode messages recorded"
    assert any(
        spans_overlap(k, n) for k in kernels for n in nets
    ), "no kernel/network overlap found"


def test_partition_overlaps_other_gpus_kernels():
    """Host partition work of one chunk runs while other GPUs compute."""
    outcome, cluster = run(4)
    tr = cluster.trace
    kernels = [s for s in tr.spans if s.category == T.CAT_KERNEL]
    parts = [s for s in tr.spans if s.category == T.CAT_PARTITION]
    assert any(spans_overlap(k, p) for k in kernels for p in parts)


def test_multiple_gpus_compute_concurrently():
    outcome, cluster = run(4)
    tr = cluster.spans if hasattr(cluster, "spans") else cluster.trace
    kernels = [s for s in cluster.trace.spans if s.category == T.CAT_KERNEL]
    by_gpu = {}
    for s in kernels:
        by_gpu.setdefault(s.resource, []).append(s)
    assert len(by_gpu) == 4
    gpus = list(by_gpu)
    assert any(
        spans_overlap(a, b)
        for a in by_gpu[gpus[0]]
        for b in by_gpu[gpus[1]]
    )


def test_map_phase_shorter_than_serial_sum():
    """Overlap must beat the fully-serial schedule by a clear margin."""
    outcome, cluster = run(8)
    tr = cluster.trace
    serial = sum(
        s.duration
        for s in tr.spans
        if s.category
        in (T.CAT_KERNEL, T.CAT_H2D, T.CAT_D2H, T.CAT_PARTITION, T.CAT_NET)
    )
    assert outcome.map_wall < 0.5 * serial


def test_sync_uploads_do_not_overlap_same_gpu_kernels():
    """The CUDA limitation: texture uploads and kernels on ONE GPU are
    mutually exclusive (they share the engine)."""
    outcome, cluster = run(2)
    tr = cluster.trace
    for gpu_name in ("gpu0", "gpu1"):
        mine = [
            s
            for s in tr.spans
            if s.resource == gpu_name and s.category in (T.CAT_KERNEL, T.CAT_H2D)
        ]
        mine.sort(key=lambda s: s.start)
        for a, b in zip(mine, mine[1:]):
            assert a.end <= b.start + 1e-12, f"{gpu_name}: {a} overlaps {b}"


def test_threshold_splits_messages():
    big, _ = run(8, send_threshold_pairs=1 << 20)
    small, _ = run(8, send_threshold_pairs=1 << 10)
    assert small.n_messages > big.n_messages
    # Same bytes either way — the stream is just chunked differently.
    assert small.bytes_internode == big.bytes_internode
