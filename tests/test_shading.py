"""Tests for gradient estimation and Phong shading — including the
bricked-equals-reference invariant with shading enabled."""

import numpy as np
import pytest

from repro.render import (
    PhongParams,
    RenderConfig,
    central_gradient,
    default_tf,
    max_abs_diff,
    orbit_camera,
    render_reference,
    shade_phong,
)
from repro.volume import BrickGrid, Volume, make_dataset


def test_phong_params_validation():
    with pytest.raises(ValueError):
        PhongParams(ambient=-0.1)
    with pytest.raises(ValueError):
        PhongParams(shininess=0.0)


def test_gradient_of_linear_field_is_exact():
    """∇(ax+by+cz) must be (a,b,c) everywhere away from edges."""
    n = 8
    x, y, z = np.mgrid[0:n, 0:n, 0:n].astype(np.float32)
    data = 2.0 * x + 3.0 * y - 1.5 * z
    pos = np.array([[4.0, 4.0, 4.0], [2.5, 5.5, 3.0], [6.0, 2.0, 5.0]])
    g = central_gradient(data, pos)
    assert np.allclose(g, [[2.0, 3.0, -1.5]] * 3, atol=1e-4)


def test_gradient_zero_in_constant_field():
    data = np.full((6, 6, 6), 0.7, np.float32)
    g = central_gradient(data, np.array([[3.0, 3.0, 3.0]]))
    assert np.allclose(g, 0.0)


def test_gradient_stencil_validation():
    data = np.zeros((4, 4, 4), np.float32)
    with pytest.raises(ValueError):
        central_gradient(data, np.zeros((1, 3)), h=0.0)


def test_shade_phong_zero_gradient_passthrough():
    rgb = np.array([[0.5, 0.4, 0.3]], np.float32)
    grad = np.zeros((1, 3), np.float32)
    view = np.array([[0.0, 1.0, 0.0]])
    out = shade_phong(rgb, grad, view)
    assert np.allclose(out, rgb)


def test_shade_phong_facing_brighter_than_grazing():
    """A surface facing the headlight is brighter than one edge-on."""
    rgb = np.array([[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]], np.float32)
    view = np.array([[0.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
    grads = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0]], np.float32)
    out = shade_phong(rgb, grads, view)
    assert out[0].mean() > out[1].mean()
    # Grazing sample keeps only the ambient term.
    assert np.allclose(out[1], 0.5 * PhongParams().ambient, atol=1e-5)


def test_shade_phong_two_sided():
    """Gradients pointing toward or away from the light shade equally
    (shells have no consistent orientation)."""
    rgb = np.full((2, 3), 0.5, np.float32)
    view = np.array([[0.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
    grads = np.array([[0.0, -1.0, 0.0], [0.0, 1.0, 0.0]], np.float32)
    out = shade_phong(rgb, grads, view)
    assert np.allclose(out[0], out[1])


def test_shade_phong_output_clipped():
    rgb = np.full((1, 3), 1.0, np.float32)
    view = np.array([[0.0, 1.0, 0.0]])
    grads = np.array([[0.0, -5.0, 0.0]], np.float32)
    out = shade_phong(rgb, grads, view, PhongParams(specular=5.0))
    assert np.all(out <= 1.0)


def test_shade_phong_shape_validation():
    with pytest.raises(ValueError):
        shade_phong(np.zeros((2, 3)), np.zeros((3, 3)), np.zeros((2, 3)))


def test_fetches_per_sample():
    assert RenderConfig(shading=False).fetches_per_sample == 1
    assert RenderConfig(shading=True).fetches_per_sample == 7


def test_shaded_bricked_render_equals_reference():
    """The key invariant survives shading: the ±½-voxel gradient stencil
    stays inside the ghost shell, so bricked == reference exactly."""
    v = make_dataset("supernova", (20, 20, 20))
    cam = orbit_camera(v.shape, azimuth_deg=25, elevation_deg=30, width=40, height=40)
    tf = default_tf()
    cfg = RenderConfig(dt=0.8, ert_alpha=1.0, shading=True)
    ref = render_reference(v, cam, tf, cfg)
    from tests.test_raycast import render_bricked

    grid = BrickGrid(v.shape, 10, ghost=1)
    img, _, _ = render_bricked(v, grid, cam, tf, cfg)
    assert max_abs_diff(img, ref.image) < 1e-4


def test_shading_changes_the_image():
    v = make_dataset("skull", (20, 20, 20))
    cam = orbit_camera(v.shape, width=40, height=40)
    tf = default_tf()
    flat = render_reference(v, cam, tf, RenderConfig(dt=0.8))
    lit = render_reference(v, cam, tf, RenderConfig(dt=0.8, shading=True))
    assert max_abs_diff(flat.image, lit.image) > 0.01


def test_shading_counts_extra_fetches():
    v = make_dataset("skull", (16, 16, 16))
    cam = orbit_camera(v.shape, width=32, height=32)
    tf = default_tf()
    flat = render_reference(v, cam, tf, RenderConfig(dt=1.0, ert_alpha=1.0))
    lit = render_reference(v, cam, tf, RenderConfig(dt=1.0, ert_alpha=1.0, shading=True))
    assert lit.stats.n_samples == 7 * flat.stats.n_samples
