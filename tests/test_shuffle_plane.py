"""Tests for the pluggable shuffle plane (`repro.parallel.shuffle`).

The executor-parity and golden suites already pin that both planes are
bitwise-indistinguishable; this layer tests the plane machinery itself:
the ShuffleSpec ownership/routing contract, the mesh record protocol
and per-frame watermarks, transport configuration (PoolConfig + env
overrides), the control-plane guarantee (zero run bytes through the
parent), NUMA pinning, and the mesh failure modes — a reducer-owner
dying mid-shuffle and a wedged edge — which must tear the pool down
with zero leaked shared-memory segments and allow a bitwise retry.
"""

import os
import time

import numpy as np
import pytest

from repro.core import InProcessExecutor, ShuffleSpec
from repro.parallel import (
    DEFAULT_RING_WRITE_TIMEOUT,
    ENV_RING_WRITE_TIMEOUT,
    ENV_SHUFFLE_MODE,
    PoolConfig,
    SharedMemoryPoolExecutor,
    WorkerMesh,
    shm_segment_exists,
    usable_cores,
)
from repro.parallel.shuffle import MESH_HEADER_NBYTES


# -- the shared ownership / routing contract ---------------------------------
def test_shuffle_spec_ownership_partition_modulo_workers():
    s = ShuffleSpec(n_reducers=7, n_workers=3)
    assert [s.owner_of(p) for p in range(7)] == [0, 1, 2, 0, 1, 2, 0]
    assert s.owned_partitions(0) == [0, 3, 6]
    assert s.owned_partitions(1) == [1, 4]
    assert s.owned_partitions(2) == [2, 5]
    # Every partition owned exactly once.
    owned = [p for w in range(3) for p in s.owned_partitions(w)]
    assert sorted(owned) == list(range(7))
    # More workers than partitions: the surplus owns nothing.
    s2 = ShuffleSpec(n_reducers=2, n_workers=4)
    assert s2.owned_partitions(2) == [] and s2.owned_partitions(3) == []
    # The serial degenerate case: one worker owns everything.
    assert ShuffleSpec(5).owned_partitions(0) == list(range(5))


def test_shuffle_spec_validation():
    with pytest.raises(ValueError):
        ShuffleSpec(0)
    with pytest.raises(ValueError):
        ShuffleSpec(1, 0)
    s = ShuffleSpec(4, 2)
    with pytest.raises(ValueError):
        s.owner_of(4)
    with pytest.raises(ValueError):
        s.owned_partitions(2)


def test_shuffle_spec_bucket_runs_layout():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    pairs = np.zeros(10, dtype=kv)
    pairs["key"] = np.arange(10)
    dests = np.array([0, 1, 2, 0, 1, 2, 0, 1, 2, 0])
    runs, routed = ShuffleSpec(3).bucket_runs(pairs, dests)
    assert routed.tolist() == [4, 3, 3]
    assert [len(r) for r in runs] == [4, 3, 3]
    # Emission order preserved within a run (the stable sort relies on it).
    assert runs[0]["key"].tolist() == [0, 3, 6, 9]
    assert runs[1]["key"].tolist() == [1, 4, 7]


# -- transport configuration -------------------------------------------------
def test_pool_config_env_overrides(monkeypatch):
    monkeypatch.delenv(ENV_RING_WRITE_TIMEOUT, raising=False)
    monkeypatch.delenv(ENV_SHUFFLE_MODE, raising=False)
    cfg = PoolConfig()
    assert cfg.resolved_ring_write_timeout() == DEFAULT_RING_WRITE_TIMEOUT
    # Auto picks the plane that matches the reduce placement...
    assert cfg.resolved_shuffle_mode("worker") == "mesh"
    assert cfg.resolved_shuffle_mode("parent") == "parent"
    # ...unless the environment pins it (the CI slow matrix does this).
    monkeypatch.setenv(ENV_SHUFFLE_MODE, "parent")
    assert cfg.resolved_shuffle_mode("worker") == "parent"
    monkeypatch.setenv(ENV_SHUFFLE_MODE, "mesh")
    assert cfg.resolved_shuffle_mode("parent") == "mesh"
    monkeypatch.setenv(ENV_SHUFFLE_MODE, "bogus")
    with pytest.raises(ValueError, match="REPRO_SHUFFLE_MODE"):
        cfg.resolved_shuffle_mode("worker")
    # Explicit modes beat the environment.
    assert PoolConfig(shuffle_mode="parent").resolved_shuffle_mode("worker") == "parent"
    # Timeout: explicit > env > default; soak tests use the env knob.
    monkeypatch.setenv(ENV_RING_WRITE_TIMEOUT, "7.5")
    assert cfg.resolved_ring_write_timeout() == 7.5
    assert PoolConfig(ring_write_timeout=2.0).resolved_ring_write_timeout() == 2.0
    monkeypatch.setenv(ENV_RING_WRITE_TIMEOUT, "not-a-number")
    with pytest.raises(ValueError, match="REPRO_RING_WRITE_TIMEOUT"):
        cfg.resolved_ring_write_timeout()
    # Nonpositive env values are as invalid as nonpositive kwargs:
    # silently falling back to 300s would hide the misconfiguration.
    monkeypatch.setenv(ENV_RING_WRITE_TIMEOUT, "0")
    with pytest.raises(ValueError, match="must be positive"):
        cfg.resolved_ring_write_timeout()


def test_pool_config_edge_capacity_and_validation():
    assert PoolConfig(ring_capacity=8 << 20).resolved_edge_capacity(4) == 2 << 20
    assert PoolConfig(ring_capacity=1024).resolved_edge_capacity(4) == 1 << 16
    assert PoolConfig(mesh_edge_capacity=4096).resolved_edge_capacity(4) == 4096
    with pytest.raises(ValueError):
        PoolConfig(shuffle_mode="ring")
    with pytest.raises(ValueError):
        PoolConfig(ring_capacity=0)
    with pytest.raises(ValueError):
        PoolConfig(mesh_edge_capacity=MESH_HEADER_NBYTES)


def test_executor_resolves_transport_at_construction(monkeypatch):
    monkeypatch.delenv(ENV_SHUFFLE_MODE, raising=False)
    ex = SharedMemoryPoolExecutor(workers=2, reduce_mode="worker")
    assert ex.shuffle_mode == "mesh" and ex.mesh_active
    ex = SharedMemoryPoolExecutor(workers=2, reduce_mode="parent")
    assert ex.shuffle_mode == "parent" and not ex.mesh_active
    # mesh requested with a parent-side reduce: every run's destination
    # IS the parent, so the mesh never materializes — and every
    # user-facing surface reports the plane that actually ran.
    ex = SharedMemoryPoolExecutor(workers=2, reduce_mode="parent",
                                  shuffle_mode="mesh")
    assert ex.shuffle_mode == "mesh" and not ex.mesh_active
    assert ex.effective_shuffle_mode == "parent"
    assert SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh"
    ).effective_shuffle_mode == "mesh"
    # env steering of "auto" is captured once, at construction
    monkeypatch.setenv(ENV_SHUFFLE_MODE, "parent")
    ex = SharedMemoryPoolExecutor(workers=2, reduce_mode="worker")
    assert ex.shuffle_mode == "parent" and not ex.mesh_active
    monkeypatch.setenv(ENV_RING_WRITE_TIMEOUT, "9")
    ex = SharedMemoryPoolExecutor(workers=1)
    assert ex.ring_write_timeout == 9.0


def test_mesh_fd_headroom_guard(monkeypatch):
    """On hosts where the parent's O(N²) edge attachments would blow the
    fd soft limit, an implicit (auto) mesh degrades to the parent plane
    with a warning; an explicit mesh request fails fast with guidance
    instead of EMFILE mid-handshake."""
    from repro.parallel.shuffle import mesh_fd_headroom

    fits, needed, _ = mesh_fd_headroom(2)
    assert needed == 2 * 1 + 4 * 2 + 64
    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(
        pool_mod, "mesh_fd_headroom", lambda w: (False, 9999, 128)
    )
    monkeypatch.delenv(ENV_SHUFFLE_MODE, raising=False)
    with pytest.warns(RuntimeWarning, match="RLIMIT_NOFILE"):
        ex = SharedMemoryPoolExecutor(workers=2, reduce_mode="worker")
    assert ex.effective_shuffle_mode == "parent" and not ex.mesh_active
    with pytest.raises(ValueError, match="RLIMIT_NOFILE"):
        SharedMemoryPoolExecutor(
            workers=2, reduce_mode="worker", shuffle_mode="mesh"
        )


def test_renderer_rejects_bad_shuffle_mode():
    from repro import MapReduceVolumeRenderer

    with pytest.raises(ValueError, match="shuffle_mode"):
        MapReduceVolumeRenderer(volume_shape=(8, 8, 8), shuffle_mode="ring")


# -- the mesh record protocol (single-process loopback) ----------------------
def make_pair_mesh(capacity=4096, timeout=2.0):
    """Two cross-attached WorkerMesh halves in one process."""
    m0 = WorkerMesh(0, 2, capacity, timeout)
    m1 = WorkerMesh(1, 2, capacity, timeout)
    m0.attach_row({1: m1.inbound_names[0]})
    m1.attach_row({0: m0.inbound_names[1]})
    return m0, m1


def test_worker_mesh_roundtrip_restores_chunk_order():
    """Worker 0 maps chunks 0 and 2, worker 1 maps chunk 1: worker 1
    (owner of partition 1) must reassemble the partition's runs in
    chunk order even though they arrive out of order, over two channels
    (edge ring + local self-stash), with an empty run in the mix."""
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_mesh()
    try:
        def run(ci, n):
            r = np.zeros(n, dtype=kv)
            r["key"] = np.arange(n) + 100 * ci
            return r

        # Worker 0 ships its chunks' partition-1 runs newest-first (out
        # of chunk order), plus a self-owned partition-0 record that
        # must short-circuit without touching a ring.
        assert m0.send(seq=5, ci=2, part=1, run=run(2, 3), owner=1)
        assert m0.send(seq=5, ci=0, part=1, run=run(0, 0), owner=1)  # empty
        assert m0.send(seq=5, ci=0, part=0, run=run(0, 2), owner=0)
        written = sum(r.written for r in m0.outbound.values())
        assert written == 2 * MESH_HEADER_NBYTES + (3 + 0) * kv.itemsize

        # Worker 1 contributes its own chunk's run via the self-stash.
        assert m1.send(seq=5, ci=1, part=1, run=run(1, 4), owner=1)
        got = m1.take_frame(seq=5, owned=[1], n_chunks=3, kv_dtype=kv)
        assert [len(row[0]) for row in got] == [0, 4, 3]  # chunk order
        assert got[1][0]["key"].tolist() == [100, 101, 102, 103]
        assert got[2][0]["key"].tolist() == [200, 201, 202]
        # Worker 0's own take: only its self-routed partition-0 record.
        got0 = m0.take_frame(seq=5, owned=[0], n_chunks=1, kv_dtype=kv)
        assert got0[0][0]["key"].tolist() == [0, 1]
    finally:
        m0.close()
        m1.close()


def test_worker_mesh_disjoint_chunks_and_frames_never_interleave():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_mesh()
    try:
        def run(tag, n=2):
            r = np.zeros(n, dtype=kv)
            r["key"] = np.arange(n) + tag
            return r

        # Frame 1 and frame 2 records interleave on the wire (pipelined
        # frames do exactly this); per-seq stashes must keep them apart.
        assert m0.send(1, 0, 1, run(10), owner=1)
        assert m0.send(2, 0, 1, run(20), owner=1)
        assert m1.send(1, 1, 1, run(11), owner=1)  # self
        assert m1.send(2, 1, 1, run(21), owner=1)  # self
        f1 = m1.take_frame(1, owned=[1], n_chunks=2, kv_dtype=kv)
        assert f1[0][0]["key"].tolist() == [10, 11]
        assert f1[1][0]["key"].tolist() == [11, 12]
        f2 = m1.take_frame(2, owned=[1], n_chunks=2, kv_dtype=kv)
        assert f2[0][0]["key"].tolist() == [20, 21]
        assert f2[1][0]["key"].tolist() == [21, 22]
    finally:
        m0.close()
        m1.close()


def test_worker_mesh_oversized_record_reports_fallback():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_mesh(capacity=128)
    try:
        big = np.zeros(100, dtype=kv)  # 800 B + header > 128 B edge
        assert not m0.send(3, 0, 1, big, owner=1)  # caller must relay
        # Relayed records land like any other and satisfy the watermark.
        m1.stash_relay(3, 0, 1, big)
        got = m1.take_frame(3, owned=[1], n_chunks=1, kv_dtype=kv)
        assert np.array_equal(got[0][0], big)
    finally:
        m0.close()
        m1.close()


def test_worker_mesh_watermark_times_out_on_missing_records():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_mesh(timeout=0.1)
    try:
        assert m0.send(1, 0, 1, np.zeros(1, dtype=kv), owner=1)
        from repro.parallel import RingTimeout

        t0 = time.monotonic()
        with pytest.raises(RingTimeout, match="watermark"):
            m1.take_frame(1, owned=[1], n_chunks=2, kv_dtype=kv)
        assert time.monotonic() - t0 >= 0.1
    finally:
        m0.close()
        m1.close()


def test_worker_mesh_segments_unlinked_on_close():
    m0, m1 = make_pair_mesh()
    names = list(m0.inbound_names.values()) + list(m1.inbound_names.values())
    m0.close()
    m1.close()
    for name in names:
        assert not shm_segment_exists(name), f"leaked mesh edge {name}"


# -- generic pool jobs over the mesh -----------------------------------------
# The mappers/reducer and the job builder are the ones the executor
# parity suite already defines — same KV dtype, same placeholder
# semantics — so the two test layers cannot drift apart.
from test_parallel_executor import (  # noqa: E402
    KV,
    ExitMapper,
    ModSquareMapper,
    SumReducer,
    _generic_job as _job,
)


class SleepyMapper(ModSquareMapper):
    """Sleeps inside map for one specific chunk — a worker that is busy
    computing (not idle) and therefore cannot drain its inbound edges.

    Unlike its parent it emits *every* key (no placeholder discard):
    ModSquareMapper keeps only even data values, whose ``% 10`` keys are
    all even, which would leave the odd partitions — the traffic this
    test needs to wedge an edge with — completely empty.
    """

    def __init__(self, max_key, sleep_chunk, seconds):
        super().__init__(max_key)
        self.sleep_chunk = sleep_chunk
        self.seconds = seconds

    def map(self, chunk):
        from repro.core import MapOutput

        if chunk.id == self.sleep_chunk:
            time.sleep(self.seconds)
        data = chunk.payload()
        pairs = np.empty(len(data), dtype=KV)
        pairs["key"] = (
            data.astype(np.int64) % (self.max_key + 1)
        ).astype(np.int32)
        pairs["val"] = data.astype(np.float32) ** 2
        return MapOutput(
            pairs, work={"n_rays": len(data), "n_samples": 3 * len(data)}
        )


def assert_outputs_identical(a, b):
    assert len(a.outputs) == len(b.outputs)
    for (k1, v1), (k2, v2) in zip(a.outputs, b.outputs):
        assert np.array_equal(k1, k2) and np.array_equal(v1, v2)
    assert np.array_equal(a.pairs_per_reducer, b.pairs_per_reducer)
    assert a.stats.as_dict() == b.stats.as_dict()


def test_mesh_zero_run_bytes_through_parent_and_stats_schema():
    """The acceptance-criteria counter: with worker-side reduce on the
    mesh plane, the parent touches zero run bytes; the same job on the
    parent plane routes every byte through it."""
    spec, chunks = _job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(spec, chunks)
    total_run_bytes = int(ref.pairs_per_reducer.sum()) * KV.itemsize

    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh"
    ) as pool:
        got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)
    ring = got.stats.ring
    assert ring["shuffle_mode"] == "mesh"
    assert ring["parent_run_bytes"] == 0
    assert ring["queue_fallbacks"] == 0
    # Everything not self-routed crossed the mesh: headers + payload.
    assert ring["mesh_bytes_total"] > 0
    assert {"src", "dst", "stall_seconds", "stall_events", "high_water_bytes"} \
        <= set(ring["per_edge"][0])
    assert len(ring["per_edge"]) == 2  # N*(N-1) directed edges, N=2

    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="parent"
    ) as pool:
        got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)
    ring = got.stats.ring
    assert ring["shuffle_mode"] == "parent"
    assert ring["parent_run_bytes"] == total_run_bytes


def test_mesh_fallback_counts_and_parent_bytes():
    spec, chunks = _job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(spec, chunks)
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh",
        mesh_edge_capacity=64,  # no real run fits: all relayed
    ) as pool:
        got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)
    ring = got.stats.ring
    assert ring["queue_fallbacks"] > 0
    assert ring["parent_run_bytes"] > 0  # the escape hatch is counted


def test_mesh_kill_reducer_owner_mid_shuffle():
    """The mesh-specific stress: a reducer-owning worker dies while its
    peers are still shuffling into its inbound edges.  The pool must
    detect it, tear down with zero leaked segments (including the dead
    worker's own edge rings), and retry bitwise on a fresh pool."""
    good_spec, chunks = _job(ModSquareMapper(9), n_chunks=4)
    # Worker 1 owns partition 1; chunk 1 is mapped on worker 1 and kills it.
    crash_spec, _ = _job(ExitMapper(kill_chunk=1), n_chunks=4)
    placement = [0, 1, 0, 1]
    ref = InProcessExecutor().execute(good_spec, chunks, placement)
    pool = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh",
        supervise=False,  # pin legacy fail-fast teardown semantics
    )
    try:
        got = pool.execute(good_spec, chunks, placement)
        assert_outputs_identical(ref, got)
        names = [r.name for r in pool._state["rings"]]
        names += [r.name for r in pool._state["mesh_edges"].values()]
        names.append(pool._state["arena"].name)

        with pytest.raises(RuntimeError, match="died during execute"):
            pool.execute(crash_spec, chunks, placement)
        assert not pool.running
        for name in names:
            assert not shm_segment_exists(name), f"leaked segment {name}"

        got = pool.execute(good_spec, chunks, placement)
        assert_outputs_identical(ref, got)
    finally:
        pool.close()


def test_mesh_wedged_edge_times_out_and_tears_down():
    """A mapper blocked on a full edge whose owner is busy computing
    (not draining) must surface as a RingTimeout after the configured
    ring_write_timeout — tearing the pool down — instead of hanging."""
    # Worker 1 sleeps through its map while worker 0 shuffles ~11 KiB of
    # partition-1 records into a 4 KiB edge; each record (~1 KiB) fits
    # individually, so there is no queue fallback, only backpressure.
    # The volume exceeds 2x the edge capacity on purpose: worker 1 may
    # legitimately drain the edge once in its idle poll *before* it
    # starts the sleeping map task, and the write must still wedge.
    spec, chunks = _job(
        SleepyMapper(9, sleep_chunk=0, seconds=8.0),
        n_chunks=12, n_elems=256,
    )
    placement = [1] + [0] * 11
    pool = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh",
        mesh_edge_capacity=4096, ring_write_timeout=0.25,
        supervise=False,  # pin legacy fail-fast teardown semantics
    )
    try:
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="map of chunk"):
            pool.execute(spec, chunks, placement)
        # Detection is ~0.25s + a bounded teardown (the 5s join grace on
        # the still-sleeping worker); anything near ring_write_timeout's
        # 300s default would mean the configured bound was ignored.
        assert time.monotonic() - t0 < 15.0
        assert not pool.running  # wedged edge => whole-pool teardown
        # Retry with a non-wedged job on the same executor: fresh pool,
        # same short timeout — the idle-owner drain keeps it live.
        good_spec, _ = _job(ModSquareMapper(9))
        ref = InProcessExecutor().execute(good_spec, chunks, placement)
        got = pool.execute(good_spec, chunks, placement)
        assert_outputs_identical(ref, got)
    finally:
        pool.close()


def test_cleanup_sweeps_edge_names_even_without_handshake():
    """Edge names are deterministic and recorded before any worker
    exists, so teardown unlinks a dead worker's already-created edges
    even when it never got to report them (death mid-handshake)."""
    from multiprocessing import shared_memory

    from repro.parallel.pool import _cleanup
    from repro.parallel.shuffle import mesh_edge_name

    created = mesh_edge_name("testdead", 0, 1)
    never_created = mesh_edge_name("testdead", 1, 0)
    seg = shared_memory.SharedMemory(create=True, size=128, name=created)
    seg.close()
    assert shm_segment_exists(created)
    # The parent knew both names up front; only one segment ever existed.
    _cleanup({"mesh_edge_names": [created, never_created]})
    assert not shm_segment_exists(created)
    assert not shm_segment_exists(never_created)


def test_mesh_edge_names_are_deterministic_and_swept_on_close():
    spec, chunks = _job(ModSquareMapper(9))
    pool = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh"
    )
    try:
        pool.execute(spec, chunks)
        names = list(pool._state["mesh_edge_names"])
        assert len(names) == 2  # N*(N-1), N=2
        attached = sorted(r.name for r in pool._state["mesh_edges"].values())
        assert sorted(names) == attached  # workers used the assigned names
        for name in names:
            assert shm_segment_exists(name)
    finally:
        pool.close()
    for name in names:
        assert not shm_segment_exists(name), f"leaked edge {name}"


# -- NUMA / core pinning -----------------------------------------------------
def test_pin_workers_warns_when_cores_insufficient(monkeypatch):
    spec, chunks = _job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(spec, chunks)
    # Force the undersized-affinity path regardless of the host.
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0}, raising=False)
    with SharedMemoryPoolExecutor(workers=2, pin_workers=True) as pool:
        with pytest.warns(RuntimeWarning, match="pin_workers"):
            got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)


@pytest.mark.skipif(
    not hasattr(os, "sched_setaffinity"), reason="no CPU affinity API"
)
def test_pin_workers_pins_when_possible():
    spec, chunks = _job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(spec, chunks)
    # workers == 1 <= cores: pinning engages, results unchanged.
    with SharedMemoryPoolExecutor(
        workers=1, pin_workers=True, reduce_mode="worker", shuffle_mode="mesh"
    ) as pool:
        assert pool._worker_pins() == [sorted(os.sched_getaffinity(0))[0]]
        got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)


def test_pin_workers_disabled_is_pinless():
    pool = SharedMemoryPoolExecutor(workers=max(2, usable_cores()))
    assert pool._worker_pins() == [None] * pool.workers
