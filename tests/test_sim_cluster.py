"""Tests for hardware specs, node/cluster runtime, presets, and trace."""

import pytest

from repro.sim import (
    ClusterRuntime,
    ClusterSpec,
    CPUSpec,
    DiskSpec,
    GPUSpec,
    NetworkSpec,
    NodeSpec,
    PCIeSpec,
    StageBreakdown,
    Trace,
    accelerator_cluster,
    cpu_cluster,
    laptop,
)
from repro.sim import trace as T

MiB = 1024 * 1024


# -- calibration against the paper's stated micro-costs -------------------
def test_disk_64cubed_brick_is_about_20ms():
    """Paper: 'loading a 64^3 block from disk takes approximately 20 ms'."""
    nbytes = 64**3 * 4
    t = DiskSpec().read_time(nbytes)
    assert 0.015 <= t <= 0.025


def test_pcie_64cubed_brick_under_0p2ms():
    """Paper: transferring that brick to the GPU takes less than 0.2 ms."""
    nbytes = 64**3 * 4
    assert PCIeSpec().h2d_time(nbytes) < 0.2e-3


def test_fragment_download_under_2ms():
    """Paper: final ray fragments GPU->CPU 'less than 2 ms'."""
    # A 512^2 image worth of 24-byte fragments.
    nbytes = 512 * 512 * 24
    assert PCIeSpec().d2h_time(nbytes) < 2e-3


def test_vram_more_than_10x_dram_bandwidth():
    assert GPUSpec().vram_bandwidth > 10 * CPUSpec().dram_bandwidth


def test_gpu_raycast_time_monotone_in_work():
    g = GPUSpec()
    assert g.raycast_time(1000, 100000) < g.raycast_time(1000, 200000)
    assert g.raycast_time(1000, 100000) < g.raycast_time(2000, 100000)
    with pytest.raises(ValueError):
        g.raycast_time(-1, 0)


def test_network_transfer_time():
    n = NetworkSpec(bandwidth=4e9, latency=2e-6, message_overhead=4e-6)
    assert n.transfer_time(4e9) == pytest.approx(1.0 + 6e-6)


# -- presets ---------------------------------------------------------------
def test_accelerator_cluster_shapes():
    c = accelerator_cluster(32)
    assert c.node_count == 8
    assert c.gpu_count == 32
    assert all(n.gpu_count == 4 for n in c.nodes)

    c = accelerator_cluster(2)
    assert c.node_count == 1
    assert c.gpu_count == 2

    c = accelerator_cluster(9)
    assert c.node_count == 3
    assert c.gpu_count == 9


def test_accelerator_cluster_validation():
    with pytest.raises(ValueError):
        accelerator_cluster(0)
    with pytest.raises(ValueError):
        accelerator_cluster(4, gpus_per_node=0)


def test_cpu_cluster_512_procs_matches_paraview_rate():
    c = cpu_cluster(512)
    total_vps = sum(g.texture_samples_per_sec for g in c.gpu_specs())
    # Moreland et al.: 346M VPS at 512 procs; our preset should be close.
    assert 250e6 <= total_vps <= 450e6


def test_laptop_single_gpu():
    c = laptop()
    assert c.gpu_count == 1 and c.node_count == 1


def test_with_gpu_override():
    c = accelerator_cluster(4).with_gpu(texture_samples_per_sec=1.0)
    assert all(g.texture_samples_per_sec == 1.0 for g in c.gpu_specs())


# -- runtime ---------------------------------------------------------------
def test_vram_accounting():
    rt = ClusterRuntime(accelerator_cluster(1))
    gpu = rt.gpus[0]
    gpu.allocate(gpu.spec.vram_bytes)
    with pytest.raises(MemoryError):
        gpu.allocate(1)
    gpu.free(gpu.spec.vram_bytes)
    with pytest.raises(ValueError):
        gpu.free(1)


def test_texture_upload_blocks_kernel_same_gpu():
    """Sync 3D-texture copies occupy the GPU engine (paper's CUDA limitation)."""
    rt = ClusterRuntime(accelerator_cluster(1))
    env, gpu = rt.env, rt.gpus[0]
    order = []

    def uploader():
        yield env.process(gpu.upload_texture(64 * MiB))
        order.append(("upload_done", env.now))

    def kernel():
        yield env.process(gpu.run_kernel(0.001))
        order.append(("kernel_done", env.now))

    env.process(uploader())
    env.process(kernel())
    env.run()
    assert order[0][0] == "upload_done"
    # Kernel could not start until the upload released the engine.
    upload_t = order[0][1]
    assert order[1][1] == pytest.approx(upload_t + 0.001)


def test_d2h_download_overlaps_kernel():
    """Async downloads do not occupy the engine."""
    rt = ClusterRuntime(accelerator_cluster(1))
    env, gpu = rt.env, rt.gpus[0]
    done = {}

    def downloader():
        yield env.process(gpu.download(5 * MiB))
        done["dl"] = env.now

    def kernel():
        yield env.process(gpu.run_kernel(0.5))
        done["k"] = env.now

    env.process(downloader())
    env.process(kernel())
    env.run()
    assert done["dl"] < 0.5  # finished while kernel still running
    assert done["k"] == pytest.approx(0.5)


def test_pcie_shared_between_gpu_pairs():
    """Two GPUs on one S1070 cable contend; GPUs on different cables don't."""
    rt = ClusterRuntime(accelerator_cluster(4))
    env = rt.env
    ends = {}

    def upload(i):
        yield env.process(rt.gpus[i].upload_texture(550 * 10**6))  # ~0.1 s
        ends[i] = env.now

    for i in range(4):
        env.process(upload(i))
    env.run()
    # gpus 0,1 share a link; 2,3 share the other. Each pair serialises.
    pair_a = sorted([ends[0], ends[1]])
    pair_b = sorted([ends[2], ends[3]])
    assert pair_a[1] == pytest.approx(pair_a[0] * 2, rel=0.01)
    assert pair_b[1] == pytest.approx(pair_b[0] * 2, rel=0.01)
    assert pair_a == pytest.approx(pair_b)


def test_intranode_send_is_memcpy_not_nic():
    rt = ClusterRuntime(accelerator_cluster(8))  # 2 nodes
    env = rt.env

    def go():
        yield env.process(rt.send(0, 0, 100 * MiB))

    env.process(go())
    env.run()
    local = rt.trace.spans
    assert all(":local" in s.resource for s in local if s.category == T.CAT_NET)
    expected = rt.nodes[0].spec.cpu.memcpy_time(100 * MiB)
    assert env.now == pytest.approx(expected)


def test_internode_send_uses_nic_and_serialises_at_tx():
    spec = accelerator_cluster(12)  # 3 nodes
    rt = ClusterRuntime(spec)
    env = rt.env
    nbytes = int(spec.network.bandwidth)  # 1 s of serialisation
    ends = {}

    def sender(dst):
        yield env.process(rt.send(0, dst, nbytes))
        ends[dst] = env.now

    env.process(sender(1))
    env.process(sender(2))
    env.run()
    # Both leave node0's single TX port: second completes ~1s after first.
    times = sorted(ends.values())
    assert times[1] - times[0] == pytest.approx(1.0, rel=0.01)


def test_concurrent_receives_serialise_at_rx():
    spec = accelerator_cluster(12)  # 3 nodes
    rt = ClusterRuntime(spec)
    env = rt.env
    nbytes = int(spec.network.bandwidth)
    ends = []

    def sender(src):
        yield env.process(rt.send(src, 2, nbytes))
        ends.append(env.now)

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    times = sorted(ends)
    assert times[1] - times[0] == pytest.approx(1.0, rel=0.01)


def test_disk_fifo_on_node():
    rt = ClusterRuntime(accelerator_cluster(1))
    env = rt.env
    ends = []

    def reader():
        yield env.process(rt.nodes[0].read_disk(MiB))
        ends.append(env.now)

    env.process(reader())
    env.process(reader())
    env.run()
    assert ends[1] == pytest.approx(2 * ends[0], rel=0.01)


def test_cpu_work_uses_threads():
    rt = ClusterRuntime(accelerator_cluster(1))
    env = rt.env
    node = rt.nodes[0]
    ends = []

    def job():
        yield env.process(node.cpu_work(1.0, threads=4))
        ends.append(env.now)

    env.process(job())
    env.process(job())
    env.run()
    # 4 cores each: two jobs serialise on the quad-core node.
    assert sorted(ends) == [pytest.approx(1.0), pytest.approx(2.0)]


# -- trace / stage breakdown ----------------------------------------------
def test_trace_busy_and_window():
    tr = Trace()
    tr.record(T.CAT_KERNEL, "gpu0", 0.0, 1.0)
    tr.record(T.CAT_KERNEL, "gpu0", 2.0, 3.0)
    tr.record(T.CAT_KERNEL, "gpu1", 0.5, 1.0)
    assert tr.busy_time(T.CAT_KERNEL) == pytest.approx(2.5)
    assert tr.busy_time(T.CAT_KERNEL, "gpu0") == pytest.approx(2.0)
    assert tr.window(T.CAT_KERNEL) == (0.0, 3.0)
    assert tr.window("missing") == (0.0, 0.0)


def test_trace_rejects_negative_span():
    tr = Trace()
    with pytest.raises(ValueError):
        tr.record(T.CAT_KERNEL, "gpu0", 1.0, 0.5)


def test_stage_breakdown_accounting():
    tr = Trace()
    tr.mark("start", 0.0)
    # GPU0 computes 0.6s serial inside a 1.0s map phase.
    tr.record(T.CAT_H2D, "gpu0", 0.0, 0.1)
    tr.record(T.CAT_KERNEL, "gpu0", 0.1, 0.6)
    tr.record(T.CAT_NET, "node0->node1", 0.5, 1.0)
    tr.mark("map_phase_end", 1.0)
    tr.record(T.CAT_SORT, "node0", 1.0, 1.2)
    tr.mark("sort_phase_end", 1.2)
    tr.record(T.CAT_REDUCE, "node0", 1.2, 1.5)
    tr.mark("reduce_phase_end", 1.5)
    sb = StageBreakdown.from_trace(tr)
    assert sb.map == pytest.approx(0.6)
    assert sb.partition_io == pytest.approx(0.4)
    assert sb.sort == pytest.approx(0.2)
    assert sb.reduce == pytest.approx(0.3)
    assert sb.total == pytest.approx(1.5)
    assert sb.as_dict()["total"] == pytest.approx(1.5)


def test_stage_breakdown_requires_marks():
    tr = Trace()
    with pytest.raises(ValueError):
        StageBreakdown.from_trace(tr)
