"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.engine import AllOf, AnyOf


def test_timeout_ordering():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("a", 2.0))
    env.process(worker("b", 1.0))
    env.process(worker("c", 3.0))
    env.run()
    assert log == [(1.0, "b"), (2.0, "a"), (3.0, "c")]


def test_zero_delay_fifo_order():
    env = Environment()
    log = []

    def worker(name):
        yield env.timeout(0.0)
        log.append(name)

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_returns_value_to_waiter():
    env = Environment()
    results = []

    def child():
        yield env.timeout(1.5)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((env.now, value))

    env.process(parent())
    env.run()
    assert results == [(1.5, 42)]


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("kernel fault")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as e:
            caught.append(str(e))

    env.process(parent())
    env.run()
    assert caught == ["kernel fault"]


def test_unwaited_process_exception_surfaces():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("lost error")

    env.process(child())
    with pytest.raises(RuntimeError, match="lost error"):
        env.run()


def test_run_until_stops_clock():
    env = Environment()
    fired = []

    def w():
        yield env.timeout(10.0)
        fired.append(env.now)

    env.process(w())
    env.run(until=5.0)
    assert env.now == 5.0
    assert fired == []
    env.run()
    assert fired == [10.0]


def test_run_until_in_past_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_event_succeed_once():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_yield_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("payload")
    env.run()  # process the event with no waiters
    got = []

    def waiter():
        v = yield ev
        got.append((env.now, v))

    env.process(waiter())
    env.run()
    assert got == [(0.0, "payload")]


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError, match="must yield Events"):
        env.run()


def test_allof_collects_values_in_order():
    env = Environment()
    out = []

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        ev = AllOf(env, [env.process(child(3, "x")), env.process(child(1, "y"))])
        values = yield ev
        out.append((env.now, values))

    env.process(parent())
    env.run()
    assert out == [(3.0, ["x", "y"])]


def test_allof_empty_fires_immediately():
    env = Environment()
    out = []

    def parent():
        values = yield AllOf(env, [])
        out.append((env.now, values))

    env.process(parent())
    env.run()
    assert out == [(0.0, [])]


def test_anyof_returns_first():
    env = Environment()
    out = []

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        idx, value = yield AnyOf(
            env, [env.process(child(5, "slow")), env.process(child(2, "fast"))]
        )
        out.append((env.now, idx, value))

    env.process(parent())
    env.run()
    assert out == [(2.0, 1, "fast")]


def test_anyof_requires_events():
    env = Environment()
    with pytest.raises(ValueError):
        AnyOf(env, [])


def test_nested_processes_compose():
    env = Environment()

    def grandchild():
        yield env.timeout(1.0)
        return "g"

    def child():
        v = yield env.process(grandchild())
        yield env.timeout(1.0)
        return v + "c"

    def parent():
        v = yield env.process(child())
        return v + "p"

    p = env.process(parent())
    env.run()
    assert p.value == "gcp"
    assert env.now == 2.0


def test_clock_monotonic_across_many_events():
    env = Environment()
    times = []

    def w(d):
        yield env.timeout(d)
        times.append(env.now)

    import random

    rng = random.Random(7)
    delays = [rng.uniform(0, 100) for _ in range(200)]
    for d in delays:
        env.process(w(d))
    env.run()
    assert times == sorted(times)
    assert len(times) == 200
