"""Unit tests for Resource, Link, Store, TokenBucket."""

import pytest

from repro.sim import Environment, Link, Resource, Store, TokenBucket
from repro.sim.engine import SimulationError


def run_users(env, resource, service, n):
    """Spawn n unit-service users; return list of (start, end) tuples."""
    spans = []

    def user():
        grant = resource.request()
        yield grant
        t0 = env.now
        try:
            yield env.timeout(service)
        finally:
            resource.release()
        spans.append((t0, env.now))

    for _ in range(n):
        env.process(user())
    env.run()
    return spans


def test_resource_serialises_at_capacity_one():
    env = Environment()
    res = Resource(env, 1)
    spans = run_users(env, res, 1.0, 3)
    assert sorted(spans) == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]


def test_resource_capacity_two_runs_pairs():
    env = Environment()
    res = Resource(env, 2)
    spans = run_users(env, res, 1.0, 4)
    assert sorted(spans) == [(0.0, 1.0), (0.0, 1.0), (1.0, 2.0), (1.0, 2.0)]


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, 1)
    order = []

    def user(name, arrive):
        yield env.timeout(arrive)
        g = res.request()
        yield g
        order.append(name)
        yield env.timeout(1.0)
        res.release()

    env.process(user("late", 0.2))
    env.process(user("early", 0.1))
    env.run()
    assert order == ["early", "late"]


def test_release_without_hold_is_error():
    env = Environment()
    res = Resource(env, 1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, 0)


def test_resource_utilization_full():
    env = Environment()
    res = Resource(env, 1)
    run_users(env, res, 2.0, 2)  # busy 4s over 4s horizon
    assert res.utilization() == pytest.approx(1.0)


def test_link_transfer_time_formula():
    env = Environment()
    link = Link(env, bandwidth=1e9, latency=1e-3)
    assert link.transfer_time(1e6) == pytest.approx(1e-3 + 1e-3)


def test_link_serialises_transfers_and_pipes_latency():
    env = Environment()
    link = Link(env, bandwidth=100.0, latency=0.5)
    done = []

    def xfer(tag):
        yield env.process(link.transfer(100))  # 1s occupancy + 0.5 latency
        done.append((tag, env.now))

    env.process(xfer("a"))
    env.process(xfer("b"))
    env.run()
    # a: occupies 0..1, arrives 1.5; b: occupies 1..2, arrives 2.5.
    assert done == [("a", 1.5), ("b", 2.5)]
    assert link.bytes_moved == 200
    assert link.transfer_count == 2


def test_duplex_link_directions_independent():
    env = Environment()
    link = Link(env, bandwidth=100.0, latency=0.0, duplex=True)
    done = []

    def xfer(tag, direction):
        yield env.process(link.transfer(100, direction=direction))
        done.append((tag, env.now))

    env.process(xfer("tx", 0))
    env.process(xfer("rx", 1))
    env.run()
    assert done == [("tx", 1.0), ("rx", 1.0)]


def test_link_rejects_bad_params():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, bandwidth=0)
    with pytest.raises(ValueError):
        Link(env, bandwidth=1, latency=-1)


def test_store_fifo_and_backpressure():
    env = Environment()
    store = Store(env, capacity=2)
    consumed = []

    def producer():
        for i in range(4):
            yield store.put(i)

    def consumer():
        for _ in range(4):
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(1.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert consumed == [0, 1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(3.0)
        yield store.put("brick")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(3.0, "brick")]


def test_token_bucket_bounds_inflight():
    env = Environment()
    bucket = TokenBucket(env, tokens=2)
    active = []
    max_active = []

    def worker():
        yield bucket.acquire()
        active.append(1)
        max_active.append(len(active))
        yield env.timeout(1.0)
        active.pop()
        bucket.release()

    for _ in range(5):
        env.process(worker())
    env.run()
    assert max(max_active) <= 2
    assert bucket.available == 2
