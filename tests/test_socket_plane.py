"""Tests for the socket (tcp) shuffle plane (`repro.parallel.socketplane`).

The executor-parity and golden suites pin that the tcp plane is
bitwise-indistinguishable from the parent/mesh planes; this layer tests
the plane machinery itself: the SocketMesh record protocol over AF_UNIX
and loopback TCP streams, its failure split (wedged send vs dropped
connection), host-spec placement, transport configuration and env
overrides, the structural zero-parent-bytes guarantee, and the
crash-safe sweep of deterministic listener-socket paths.
"""

import os
import time
import uuid

import numpy as np
import pytest

from repro.core import InProcessExecutor
from repro.parallel import (
    ENV_SOCKET_FAMILY,
    PoolConfig,
    RingTimeout,
    SharedMemoryPoolExecutor,
    SocketClosed,
    SocketMesh,
    parse_host_spec,
    socket_path,
)
from repro.parallel.shuffle import MESH_HEADER_NBYTES
from repro.parallel.socketplane import resolve_socket_family

from test_parallel_executor import (  # noqa: E402
    KV,
    ExitMapper,
    ModSquareMapper,
    _generic_job as _job,
)
from test_shuffle_plane import assert_outputs_identical  # noqa: E402


# -- transport configuration -------------------------------------------------
def test_resolve_socket_family_precedence(monkeypatch):
    monkeypatch.delenv(ENV_SOCKET_FAMILY, raising=False)
    assert resolve_socket_family() in ("unix", "inet")
    assert resolve_socket_family("inet") == "inet"
    monkeypatch.setenv(ENV_SOCKET_FAMILY, "inet")
    assert resolve_socket_family() == "inet"
    # Explicit beats the environment.
    assert resolve_socket_family("unix") == "unix"
    monkeypatch.setenv(ENV_SOCKET_FAMILY, "bogus")
    with pytest.raises(ValueError, match="REPRO_SOCKET_FAMILY"):
        resolve_socket_family()
    with pytest.raises(ValueError, match="'unix' or 'inet'"):
        resolve_socket_family("tcp4")
    with pytest.raises(ValueError):
        PoolConfig(socket_family="bogus")
    monkeypatch.delenv(ENV_SOCKET_FAMILY, raising=False)
    assert PoolConfig(socket_family="inet").resolved_socket_family() == "inet"


def test_parse_host_spec_shapes():
    assert parse_host_spec(None, 3) == [0, 0, 0]
    assert parse_host_spec(2, 4) == [0, 1, 0, 1]
    assert parse_host_spec("2", 4) == [0, 1, 0, 1]
    assert parse_host_spec("0,0,1,1", 4) == [0, 0, 1, 1]
    assert parse_host_spec([0, 1], 2) == [0, 1]
    assert parse_host_spec(1, 2) == [0, 0]


@pytest.mark.parametrize(
    "spec,workers",
    [
        (0, 2),              # host count must be >= 1
        ("0,1", 3),          # list length != workers
        ("0,-1", 2),         # negative host id
        ("1,1", 2),          # host 0 unpopulated (arena lives there)
        ("zero", 2),         # neither count nor list
        ("0,x", 2),          # non-integer list entry
    ],
)
def test_parse_host_spec_rejects(spec, workers):
    with pytest.raises(ValueError):
        parse_host_spec(spec, workers)


def test_executor_resolves_tcp_plane_at_construction():
    ex = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp"
    )
    assert ex.tcp_active and not ex.mesh_active
    assert ex.effective_shuffle_mode == "tcp"
    assert ex.socket_family in ("unix", "inet")
    # tcp with a parent-side reduce degenerates to the parent plane,
    # exactly like mesh: every run's destination IS the parent.
    ex = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="parent", shuffle_mode="tcp"
    )
    assert not ex.tcp_active and ex.effective_shuffle_mode == "parent"
    assert ex.socket_family is None
    # auto never picks tcp.
    ex = SharedMemoryPoolExecutor(workers=2, reduce_mode="worker")
    assert ex.effective_shuffle_mode == "mesh"


def test_multi_host_spec_requires_tcp_plane():
    # Multi-host placement over a shared-memory transport is a lie —
    # construction must fail, not a worker at attach time.
    with pytest.raises(ValueError, match="multi-host"):
        SharedMemoryPoolExecutor(
            workers=2, reduce_mode="worker", shuffle_mode="mesh",
            host_spec="0,1",
        )
    with pytest.raises(ValueError, match="multi-host"):
        SharedMemoryPoolExecutor(workers=2, host_spec=2)
    # With the socket plane it is legal.
    ex = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp", host_spec="0,1"
    )
    assert ex.multi_host and ex.host_ids == [0, 1]


# -- the record protocol over loopback streams -------------------------------
def make_pair_sock(family="unix", timeout=2.0):
    """Two cross-attached SocketMesh halves in one process."""
    token = uuid.uuid4().hex[:12]
    m0 = SocketMesh(0, 2, timeout, token=token, family=family)
    m1 = SocketMesh(1, 2, timeout, token=token, family=family)
    m0.attach_row({1: m1.address})
    m1.attach_row({0: m0.address})
    return m0, m1


@pytest.mark.parametrize("family", ["unix", "inet"])
def test_socket_mesh_roundtrip_restores_chunk_order(family):
    """Same contract as the shm-mesh roundtrip test: partition runs
    arriving out of chunk order (with an empty run and a self-routed
    record in the mix) reassemble in chunk order — over either address
    family, since the wire format is identical."""
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_sock(family=family)
    try:
        def run(ci, n):
            r = np.zeros(n, dtype=kv)
            r["key"] = np.arange(n) + 100 * ci
            return r

        assert m0.send(seq=5, ci=2, part=1, run=run(2, 3), owner=1)
        assert m0.send(seq=5, ci=0, part=1, run=run(0, 0), owner=1)  # empty
        assert m0.send(seq=5, ci=0, part=0, run=run(0, 2), owner=0)  # self
        # Self-routed records never touch a socket; wire traffic is
        # exactly the two shipped records.
        assert m0.bytes_sent == 2 * MESH_HEADER_NBYTES + (3 + 0) * kv.itemsize

        assert m1.send(seq=5, ci=1, part=1, run=run(1, 4), owner=1)
        got = m1.take_frame(seq=5, owned=[1], n_chunks=3, kv_dtype=kv)
        assert [len(row[0]) for row in got] == [0, 4, 3]  # chunk order
        assert got[1][0]["key"].tolist() == [100, 101, 102, 103]
        assert got[2][0]["key"].tolist() == [200, 201, 202]
        got0 = m0.take_frame(seq=5, owned=[0], n_chunks=1, kv_dtype=kv)
        assert got0[0][0]["key"].tolist() == [0, 1]
        assert m1.bytes_received == m0.bytes_sent
    finally:
        m0.close()
        m1.close()


def test_socket_mesh_frames_never_interleave():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_sock()
    try:
        def run(tag, n=2):
            r = np.zeros(n, dtype=kv)
            r["key"] = np.arange(n) + tag
            return r

        # Pipelined frames interleave on the wire; per-seq stashes must
        # keep them apart — same semantics as the shm mesh.
        assert m0.send(1, 0, 1, run(10), owner=1)
        assert m0.send(2, 0, 1, run(20), owner=1)
        assert m1.send(1, 1, 1, run(11), owner=1)  # self
        assert m1.send(2, 1, 1, run(21), owner=1)  # self
        f1 = m1.take_frame(1, owned=[1], n_chunks=2, kv_dtype=kv)
        assert f1[0][0]["key"].tolist() == [10, 11]
        assert f1[1][0]["key"].tolist() == [11, 12]
        f2 = m1.take_frame(2, owned=[1], n_chunks=2, kv_dtype=kv)
        assert f2[0][0]["key"].tolist() == [20, 21]
        assert f2[1][0]["key"].tolist() == [21, 22]
    finally:
        m0.close()
        m1.close()


def test_socket_mesh_watermark_times_out_on_missing_records():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_sock(timeout=0.1)
    try:
        assert m0.send(1, 0, 1, np.zeros(1, dtype=kv), owner=1)
        t0 = time.monotonic()
        with pytest.raises(RingTimeout, match="watermark"):
            m1.take_frame(1, owned=[1], n_chunks=2, kv_dtype=kv)
        assert time.monotonic() - t0 >= 0.1
    finally:
        m0.close()
        m1.close()


def test_socket_mesh_dropped_peer_fails_watermark_fast():
    """A peer that vanishes with a frame watermark still incomplete can
    never complete it: take_frame must raise SocketClosed immediately
    instead of burning the whole watermark timeout."""
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_sock(timeout=30.0)  # never reached
    try:
        assert m0.send(1, 0, 1, np.zeros(1, dtype=kv), owner=1)
        m0.close()  # peer dies; 1 of 2 expected records delivered
        t0 = time.monotonic()
        with pytest.raises(SocketClosed, match="watermark incomplete"):
            m1.take_frame(1, owned=[1], n_chunks=2, kv_dtype=kv)
        assert time.monotonic() - t0 < 5.0  # fast-fail, not the 30s wait
    finally:
        m0.close()
        m1.close()


def test_socket_mesh_graceful_eof_between_records_is_not_an_error():
    """EOF with no watermark pending is pool-teardown order, not a
    failure: the already-delivered frame must still reduce."""
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_sock()
    try:
        run = np.zeros(3, dtype=kv)
        run["key"] = [7, 8, 9]
        assert m0.send(1, 0, 1, run, owner=1)
        m0.close()  # graceful: every record of frame 1 already shipped
        got = m1.take_frame(1, owned=[1], n_chunks=1, kv_dtype=kv)
        assert got[0][0]["key"].tolist() == [7, 8, 9]
    finally:
        m0.close()
        m1.close()


def test_socket_mesh_send_into_dead_peer_raises_socket_closed():
    kv = np.dtype([("key", np.int32), ("val", np.float32)])
    m0, m1 = make_pair_sock()
    try:
        m1.close()
        run = np.zeros(64, dtype=kv)
        with pytest.raises(SocketClosed, match="dropped mid-send"):
            # The first send(s) may land in the kernel buffer before the
            # reset propagates; keep pushing until EPIPE/ECONNRESET.
            for ci in range(256):
                m0.send(1, ci, 1, run, owner=1)
    finally:
        m0.close()
        m1.close()


def test_socket_path_is_deterministic_and_closed_mesh_unlinks_it():
    token = uuid.uuid4().hex[:12]
    assert socket_path(token, 3).endswith(f"repro_sock_{token}_3.sock")
    m = SocketMesh(0, 2, 1.0, token=token, family="unix")
    assert os.path.exists(socket_path(token, 0))
    m.close()
    assert not os.path.exists(socket_path(token, 0))


def test_cleanup_sweeps_socket_paths_even_without_handshake():
    """Listener paths are deterministic and recorded before forking, so
    teardown unlinks a dead worker's socket file even when the worker
    never reported anything — the tcp twin of the mesh edge sweep."""
    from repro.parallel.pool import _cleanup

    token = uuid.uuid4().hex[:12]
    created = socket_path(token, 0)
    never_created = socket_path(token, 1)
    with open(created, "w"):
        pass
    assert os.path.exists(created)
    _cleanup({"socket_paths": [created, never_created]})
    assert not os.path.exists(created)
    assert not os.path.exists(never_created)


# -- generic pool jobs over the socket plane ---------------------------------
def test_tcp_zero_run_bytes_through_parent_and_stats_schema():
    """The acceptance-criteria counter: with worker-side reduce on the
    tcp plane the parent touches zero run bytes — structurally, since
    streams have no capacity cliff and therefore no relay fallback —
    and the ring stats report the wire traffic instead."""
    spec, chunks = _job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(spec, chunks)

    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp"
    ) as pool:
        got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)
    ring = got.stats.ring
    assert ring["shuffle_mode"] == "tcp"
    assert ring["parent_run_bytes"] == 0
    assert ring["queue_fallbacks"] == 0
    assert ring["wire_bytes_total"] > 0
    assert ring["socket_family"] in ("unix", "inet")
    assert ring["ring_capacity"] is None  # streams have no fixed capacity
    assert {"worker", "stall_seconds", "stall_events", "high_water_bytes",
            "bytes_sent", "bytes_received"} <= set(ring["per_worker"][0])


def test_tcp_multi_host_workers_match_inprocess():
    """Workers placed on distinct "hosts" (no shared arena mapping for
    host != 0) still reproduce the in-process result bitwise: chunk
    payloads travel inline and runs travel over the sockets."""
    spec, chunks = _job(ModSquareMapper(9), n_chunks=4)
    ref = InProcessExecutor().execute(spec, chunks)
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp", host_spec="0,1"
    ) as pool:
        got = pool.execute(spec, chunks)
        assert pool.multi_host
    assert_outputs_identical(ref, got)
    assert got.stats.ring["parent_run_bytes"] == 0


def test_tcp_pool_leaves_no_socket_files_on_close():
    spec, chunks = _job(ModSquareMapper(9))
    pool = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp"
    )
    try:
        pool.execute(spec, chunks)
        paths = list(pool._state["socket_paths"])
        assert len(paths) == 2  # one listener per worker
    finally:
        pool.close()
    for path in paths:
        assert not os.path.exists(path), f"leaked socket file {path}"


def test_tcp_pool_sweeps_socket_files_after_crash_teardown():
    """A worker hard-killed mid-frame never unlinks its own listener;
    the parent's deterministic-path sweep must."""
    good_spec, chunks = _job(ModSquareMapper(9), n_chunks=4)
    crash_spec, _ = _job(ExitMapper(kill_chunk=1), n_chunks=4)
    placement = [0, 1, 0, 1]
    pool = SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp",
        supervise=False,  # pin legacy fail-fast teardown semantics
    )
    try:
        pool.execute(good_spec, chunks, placement)
        paths = list(pool._state["socket_paths"])
        with pytest.raises(
            RuntimeError, match="died during execute|dropped connection"
        ):
            pool.execute(crash_spec, chunks, placement)
        assert not pool.running
        for path in paths:
            assert not os.path.exists(path), f"leaked socket file {path}"
        # And the pool restarts cleanly on the next execute.
        ref = InProcessExecutor().execute(good_spec, chunks, placement)
        got = pool.execute(good_spec, chunks, placement)
        assert_outputs_identical(ref, got)
    finally:
        pool.close()


def test_tcp_inet_family_matches_inprocess(monkeypatch):
    monkeypatch.setenv(ENV_SOCKET_FAMILY, "inet")
    spec, chunks = _job(ModSquareMapper(9))
    ref = InProcessExecutor().execute(spec, chunks)
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="tcp"
    ) as pool:
        assert pool.socket_family == "inet"
        got = pool.execute(spec, chunks)
    assert_outputs_identical(ref, got)
    assert got.stats.ring["socket_family"] == "inet"
    assert got.stats.ring["parent_run_bytes"] == 0
