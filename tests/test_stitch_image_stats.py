"""Tests for stitching, PPM output, image metrics, and sim accounting."""

import numpy as np
import pytest

from repro.core import JobConfig, MapWork, SimClusterExecutor
from repro.render import (
    image_stats,
    max_abs_diff,
    mean_abs_diff,
    psnr,
    rgba_to_rgb8,
    stitch_pixels,
    write_ppm,
)
from repro.sim import accelerator_cluster


# -- stitching -------------------------------------------------------------
def test_stitch_scatters_parts():
    keys_a = np.array([0, 3])
    rgba_a = np.array([[1, 0, 0, 1], [0, 1, 0, 1]], np.float32)
    keys_b = np.array([5])
    rgba_b = np.array([[0, 0, 1, 1]], np.float32)
    img = stitch_pixels([(keys_a, rgba_a), (keys_b, rgba_b)], width=3, height=2)
    assert img.shape == (2, 3, 4)
    assert np.allclose(img[0, 0], [1, 0, 0, 1])
    assert np.allclose(img[1, 0], [0, 1, 0, 1])  # key 3 = row 1, col 0
    assert np.allclose(img[1, 2], [0, 0, 1, 1])  # key 5 = row 1, col 2
    assert np.allclose(img[0, 1], 0)  # untouched pixel transparent


def test_stitch_rejects_duplicates_and_bad_keys():
    k = np.array([1])
    v = np.ones((1, 4), np.float32)
    with pytest.raises(ValueError, match="more than one reducer"):
        stitch_pixels([(k, v), (k, v)], 4, 4)
    with pytest.raises(ValueError, match="outside"):
        stitch_pixels([(np.array([16]), v)], 4, 4)
    with pytest.raises(ValueError, match="outside"):
        stitch_pixels([(np.array([-1]), v)], 4, 4)
    with pytest.raises(ValueError):
        stitch_pixels([(np.array([0, 1]), v)], 4, 4)  # shape mismatch


def test_stitch_empty_parts_ok():
    img = stitch_pixels([], 4, 4)
    assert np.all(img == 0)
    img = stitch_pixels([(np.array([], np.int64), np.zeros((0, 4), np.float32))], 4, 4)
    assert np.all(img == 0)


# -- PPM / rgb8 -------------------------------------------------------------
def test_rgba_to_rgb8_blends_background():
    img = np.zeros((1, 2, 4), np.float32)
    img[0, 1] = [1, 1, 1, 1]
    rgb = rgba_to_rgb8(img, background=(0.0, 0.0, 1.0))
    assert rgb.dtype == np.uint8
    assert rgb[0, 0].tolist() == [0, 0, 255]  # background shows through
    assert rgb[0, 1].tolist() == [255, 255, 255]


def test_write_ppm_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 1, (5, 7)).astype(np.float32)
    rgb = rng.uniform(0, 1, (5, 7, 3)).astype(np.float32) * a[..., None]
    img = np.concatenate([rgb, a[..., None]], axis=2)
    path = tmp_path / "img.ppm"
    write_ppm(path, img)
    raw = path.read_bytes()
    assert raw.startswith(b"P6\n7 5\n255\n")
    pixels = np.frombuffer(raw.split(b"255\n", 1)[1], np.uint8).reshape(5, 7, 3)
    assert np.array_equal(pixels, rgba_to_rgb8(img))


# -- metrics -----------------------------------------------------------------
def test_psnr_identical_is_inf_and_symmetry():
    a = np.random.default_rng(1).uniform(0, 1, (8, 8, 4))
    assert psnr(a, a) == float("inf")
    b = a + 0.01
    assert psnr(a, b) == pytest.approx(psnr(b, a))
    assert psnr(a, b) == pytest.approx(40.0, abs=0.1)  # mse = 1e-4


def test_diff_metrics():
    a = np.zeros((2, 2))
    b = np.array([[0.0, 0.5], [0.0, 0.0]])
    assert max_abs_diff(a, b) == 0.5
    assert mean_abs_diff(a, b) == pytest.approx(0.125)
    with pytest.raises(ValueError):
        max_abs_diff(a, np.zeros((3, 3)))
    with pytest.raises(ValueError):
        psnr(a, np.zeros((3, 3)))


def test_image_stats_fields():
    img = np.zeros((4, 4, 4), np.float32)
    img[0, 0] = [0.2, 0.2, 0.2, 1.0]
    s = image_stats(img)
    assert s["covered_fraction"] == pytest.approx(1 / 16)
    assert 0 <= s["mean_alpha"] <= 1


# -- sim traffic accounting ----------------------------------------------------
def test_sim_outcome_byte_and_utilization_accounting():
    n_gpus = 4
    works = [
        MapWork(
            chunk_id=i,
            gpu=i % n_gpus,
            upload_bytes=1 << 20,
            n_rays=4096,
            n_samples=1_000_000,
            pairs_emitted=5000,
            pairs_to_reducer=np.full(n_gpus, 1000, np.int64),
        )
        for i in range(8)
    ]
    outcome, cluster = SimClusterExecutor(accelerator_cluster(n_gpus)).execute(
        works, pair_nbytes=24
    )
    assert outcome.bytes_uploaded == 8 * (1 << 20)
    assert outcome.bytes_downloaded == 8 * 5000 * 24
    assert 0 < outcome.gpu_utilization <= 1.0
    # All traffic intranode on a single node.
    assert outcome.bytes_internode == 0
    assert outcome.bytes_intranode == 8 * 4 * 1000 * 24


def test_sim_async_upload_bytes_counted():
    works = [
        MapWork(0, 0, 1 << 20, 4096, 1_000_000, 5000, np.array([5000], np.int64))
    ]
    outcome, _ = SimClusterExecutor(
        accelerator_cluster(1), JobConfig(async_upload=True)
    ).execute(works, pair_nbytes=24)
    assert outcome.bytes_uploaded == 1 << 20


def test_sim_zero_copy_skips_download():
    works = [
        MapWork(0, 0, 1 << 20, 4096, 1_000_000, 5000, np.array([5000], np.int64))
    ]
    outcome, _ = SimClusterExecutor(
        accelerator_cluster(1), JobConfig(zero_copy_fragments=True)
    ).execute(works, pair_nbytes=24)
    assert outcome.bytes_downloaded == 0
