"""Tests for pool supervision, recovery, and deterministic fault injection.

The contract under test: with ``supervise=True`` (the default) an
*infrastructure* failure — a worker process dying or a wedged
transport — is recovered **in place** (transport epoch recycled, arena
re-attached, in-flight frames re-executed) and the recovered result is
**bitwise-identical** to a failure-free run; when retries are
exhausted the pool degrades (fewer workers, then the serial executor)
rather than erroring.  User-code exceptions keep the legacy fail-fast
semantics.  Faults are injected deterministically via
:mod:`repro.parallel.faults` plans, never by ad-hoc monkeypatching.
"""

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import InProcessExecutor
from repro.parallel import (
    DEFAULT_MAX_FRAME_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    ENV_FAULT_PLAN,
    ENV_MAX_FRAME_RETRIES,
    ENV_RETRY_BACKOFF,
    ENV_WATERMARK_TIMEOUT,
    FaultPlan,
    PoolConfig,
    PoolFailure,
    PoolSupervisor,
    SharedMemoryPoolExecutor,
    WorkerMesh,
)
from repro.parallel.faults import CRASH_EXIT_CODE, resolve_fault_plan
from repro.parallel.ring import RingTimeout
from repro.parallel.socketplane import SocketClosed
from repro.parallel.supervise import (
    classify_failure,
    dead_workers,
    worker_error_to_exception,
)

from test_parallel_executor import (
    BoomReducer,
    ModSquareMapper,
    _generic_job,
    assert_results_identical,
)


def _shm_listing():
    return set(glob.glob("/dev/shm/*"))


def _pool(fault_plan=None, shuffle_mode="parent", reduce_mode="parent",
          workers=2, depth=1, retries=2, **cfg):
    return SharedMemoryPoolExecutor(
        workers=workers,
        reduce_mode=reduce_mode,
        pipeline_depth=depth,
        pool_config=PoolConfig(
            shuffle_mode=shuffle_mode,
            retry_backoff=0.0,
            max_frame_retries=retries,
            fault_plan=fault_plan,
            **cfg,
        ),
    )


# -- fault-plan grammar ------------------------------------------------------
def test_fault_plan_parses_every_action_and_condition():
    plan = FaultPlan.parse(
        "crash@map:worker=1,frame=2; exit(3)@shuffle-out:chunk=0 ;"
        "stall(2.5)@shuffle-in:gen=any;exit@reduce"
    )
    assert [r.action for r in plan.rules] == ["crash", "exit", "stall", "exit"]
    assert [r.stage for r in plan.rules] == [
        "map", "shuffle-out", "shuffle-in", "reduce"
    ]
    crash, ex, stall, bare_exit = plan.rules
    assert (crash.worker, crash.frame, crash.gen) == (1, 2, 0)
    assert (ex.arg, ex.chunk) == (3.0, 0)
    assert (stall.arg, stall.gen) == (2.5, None)  # gen=any
    assert bare_exit.arg is None  # defaults to CRASH_EXIT_CODE when fired


def test_fault_plan_empty_is_no_injection():
    assert FaultPlan.parse(None) is None
    assert FaultPlan.parse("") is None
    assert FaultPlan.parse("  ;  ") is None


@pytest.mark.parametrize("bad", [
    "boom@map",                 # unknown action
    "crash@upload",             # unknown stage
    "crash(3)@map",             # crash takes no argument
    "stall@map",                # stall needs a duration
    "stall(0)@map",             # ... a positive one
    "stall(x)@map",             # non-numeric argument
    "crash@map:gpu=1",          # unknown condition key
    "crash@map:worker=one",     # non-integer condition
    "crash@map:worker",         # not key=value
    "justnoise",                # no stage at all
    "crash@map:frame=0",        # frames are 1-based: can never fire
    "crash@map:frame=-1",       # ... and certainly not negative
    "crash@map:worker=-1",      # worker ids are 0-based, non-negative
    "crash@map:chunk=-2",       # chunk indices likewise
    "crash@map:gen=-1",         # generations likewise
    "exit(3.5)@map",            # exit statuses are integers
])
def test_fault_plan_rejects_bad_grammar(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_fault_rule_generation_scoping():
    plan = FaultPlan.parse("crash@map:worker=0; stall(1)@reduce:gen=any")
    gen0, any_gen = plan.rules
    # Default gen=0: fires on the first wave only, so the respawned
    # replacement (generation 1) re-executes cleanly.
    assert gen0.matches("map", 0, 1, None, gen=0)
    assert not gen0.matches("map", 0, 1, None, gen=1)
    assert any_gen.matches("reduce", 3, 2, None, gen=7)


def test_fault_plan_fires_each_rule_at_most_once(monkeypatch):
    plan = FaultPlan.parse("stall(5)@map:worker=0")
    fired = []
    monkeypatch.setattr(FaultPlan, "_trigger", staticmethod(fired.append))
    for _ in range(3):
        plan.fire("map", 0, 1, chunk=0)
    assert len(fired) == 1
    # A fresh generation binding starts with a clean fired set.
    plan.for_generation(1).fire("map", 0, 1, chunk=0)


def test_resolve_fault_plan_precedence(monkeypatch):
    monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
    assert resolve_fault_plan(None) is None
    monkeypatch.setenv(ENV_FAULT_PLAN, "crash@map:worker=1")
    assert resolve_fault_plan(None) == "crash@map:worker=1"
    assert resolve_fault_plan("exit(2)@reduce") == "exit(2)@reduce"
    monkeypatch.setenv(ENV_FAULT_PLAN, "garbage plan")
    with pytest.raises(ValueError):
        resolve_fault_plan(None)


# -- config knobs ------------------------------------------------------------
def test_supervision_knob_env_overrides(monkeypatch):
    for var in (ENV_WATERMARK_TIMEOUT, ENV_MAX_FRAME_RETRIES,
                ENV_RETRY_BACKOFF):
        monkeypatch.delenv(var, raising=False)
    cfg = PoolConfig()
    assert cfg.resolved_watermark_timeout() == cfg.resolved_ring_write_timeout()
    assert cfg.resolved_max_frame_retries() == DEFAULT_MAX_FRAME_RETRIES
    assert cfg.resolved_retry_backoff() == DEFAULT_RETRY_BACKOFF

    monkeypatch.setenv(ENV_WATERMARK_TIMEOUT, "7.5")
    monkeypatch.setenv(ENV_MAX_FRAME_RETRIES, "4")
    monkeypatch.setenv(ENV_RETRY_BACKOFF, "0.25")
    assert PoolConfig().resolved_watermark_timeout() == 7.5
    assert PoolConfig().resolved_max_frame_retries() == 4
    assert PoolConfig().resolved_retry_backoff() == 0.25

    # Explicit construction wins over the environment.
    explicit = PoolConfig(
        watermark_timeout=1.5, max_frame_retries=1, retry_backoff=0.0
    )
    assert explicit.resolved_watermark_timeout() == 1.5
    assert explicit.resolved_max_frame_retries() == 1
    assert explicit.resolved_retry_backoff() == 0.0

    monkeypatch.setenv(ENV_WATERMARK_TIMEOUT, "-1")
    with pytest.raises(ValueError):
        PoolConfig().resolved_watermark_timeout()
    monkeypatch.setenv(ENV_MAX_FRAME_RETRIES, "many")
    with pytest.raises(ValueError):
        PoolConfig().resolved_max_frame_retries()
    monkeypatch.setenv(ENV_RETRY_BACKOFF, "-0.5")
    with pytest.raises(ValueError):
        PoolConfig().resolved_retry_backoff()


def test_pool_config_validates_supervision_fields():
    with pytest.raises(ValueError):
        PoolConfig(watermark_timeout=0)
    with pytest.raises(ValueError):
        PoolConfig(max_frame_retries=-1)
    with pytest.raises(ValueError):
        PoolConfig(retry_backoff=-0.1)
    with pytest.raises(ValueError):
        PoolConfig(fault_plan="nonsense@nowhere")


def test_worker_mesh_watermark_knob():
    mesh = WorkerMesh(0, 2, edge_capacity=1 << 12, write_timeout=2.0,
                      watermark_timeout=3.25)
    try:
        assert mesh.watermark_timeout == 3.25
        assert mesh.write_timeout == 2.0
    finally:
        mesh.close()
    # Unset, the watermark wait inherits the write timeout (pre-knob
    # behaviour).
    mesh = WorkerMesh(1, 2, edge_capacity=1 << 12, write_timeout=1.5)
    try:
        assert mesh.watermark_timeout == 1.5
    finally:
        mesh.close()


# -- classification ----------------------------------------------------------
def test_classify_failure_recoverable_vs_fatal():
    pf = PoolFailure("a worker died", kind="worker-death", workers=[1])
    assert classify_failure(pf) is pf
    wedged = classify_failure(RingTimeout("edge full"))
    assert wedged is not None and wedged.kind == "wedged"
    dropped = classify_failure(SocketClosed("peer 1 reset"))
    assert dropped is not None and dropped.kind == "conn-drop"
    assert dropped.stage == "shuffle-out"
    assert classify_failure(ValueError("user bug")) is None
    assert classify_failure(ConnectionError("not a shuffle socket")) is None
    assert classify_failure(KeyboardInterrupt()) is None


def test_worker_error_to_exception_mapping():
    exc = worker_error_to_exception(1, "map chunk 3", "tb", "RingTimeout")
    assert isinstance(exc, PoolFailure)
    assert exc.kind == "wedged" and exc.stage == "shuffle-out"
    exc = worker_error_to_exception(0, "reduce frame 2", "tb", "RingTimeout")
    assert isinstance(exc, PoolFailure) and exc.stage == "shuffle-in"
    exc = worker_error_to_exception(1, "map chunk 3", "tb", "SocketClosed")
    assert isinstance(exc, PoolFailure)
    assert exc.kind == "conn-drop" and exc.stage == "shuffle-out"
    assert exc.workers == [1]
    exc = worker_error_to_exception(0, "reduce frame 2", "tb", "SocketClosed")
    assert isinstance(exc, PoolFailure) and exc.stage == "shuffle-in"
    exc = worker_error_to_exception(0, "map chunk 0", "tb", "ValueError")
    assert isinstance(exc, RuntimeError)
    assert not isinstance(exc, PoolFailure)


def test_supervisor_ledger_and_summary():
    sup = PoolSupervisor()
    assert not sup.active and sup.summary_lines() == []
    sup.record_failure(PoolFailure("x", kind="worker-death", stage="map"))
    sup.record_respawn(2, 0.01, gen=1)
    sup.record_reexecuted(2)
    sup.record_degraded(2, 1)
    sup.record_serial_fallback()
    assert sup.active
    snap = sup.snapshot(frame_retries=1, workers=1)
    assert snap["failures"] == 1 and snap["respawns"] == 1
    assert snap["frames_reexecuted"] == 2
    assert snap["retries_by_stage"] == {"map": 1}
    assert snap["degraded_events"] == [(2, 1)]
    assert snap["serial_fallback"] is True
    assert snap["frame_retries"] == 1 and snap["workers"] == 1
    text = "\n".join(sup.summary_lines())
    assert "1 worker failure" in text and "serial" in text


def test_supervisor_event_history_is_bounded():
    sup = PoolSupervisor()
    for _ in range(PoolSupervisor.MAX_EVENTS + 10):
        sup.record_failure(PoolFailure("x", kind="worker-death"))
    assert len(sup.events) == PoolSupervisor.MAX_EVENTS
    assert sup.failures == PoolSupervisor.MAX_EVENTS + 10  # counters unbounded


# -- in-place recovery -------------------------------------------------------
RECOVERY_CASES = [
    # (plan, shuffle_mode, reduce_mode)
    ("crash@map:worker=0,frame=1", "parent", "parent"),
    ("crash@map:worker=1,frame=1", "mesh", "worker"),
    ("exit(9)@shuffle-out:worker=1,frame=1", "parent", "parent"),
    ("exit(9)@shuffle-out:worker=0,frame=1", "mesh", "worker"),
    ("crash@reduce:worker=0,frame=1", "mesh", "worker"),
    # Socket plane: a crash mid-map drops the worker's connections too,
    # so recovery must survive the peers' SocketClosed reports racing
    # the death detection.
    ("crash@map:worker=1,frame=1", "tcp", "worker"),
    ("exit(9)@shuffle-out:worker=0,frame=1", "tcp", "worker"),
    ("crash@reduce:worker=0,frame=1", "tcp", "worker"),
]


@pytest.mark.parametrize("plan,shuffle_mode,reduce_mode", RECOVERY_CASES)
def test_recovers_in_place_bitwise_identical(plan, shuffle_mode, reduce_mode):
    spec, chunks = _generic_job(ModSquareMapper(7))
    ref = InProcessExecutor().execute(spec, chunks)
    before = _shm_listing()
    with _pool(plan, shuffle_mode, reduce_mode) as pool:
        result = pool.execute(spec, chunks)
        snap = pool._supervisor.snapshot()
    assert_results_identical(result, ref)
    assert snap["failures"] == 1
    assert snap["respawns"] == 1
    assert snap["frames_reexecuted"] == 1
    assert not snap["degraded_events"] and not snap["serial_fallback"]
    assert result.stats.recovery is not None
    assert result.stats.recovery["workers"] == 2
    assert _shm_listing() - before == set()


def test_recovery_stats_stay_none_without_failures():
    spec, chunks = _generic_job(ModSquareMapper(7))
    with _pool() as pool:
        result = pool.execute(spec, chunks)
    assert result.stats.recovery is None
    assert "recovery" not in result.stats.as_dict()


def test_recovers_with_pipelined_frames_in_flight():
    """A crash with pipeline_depth=2 replays *both* in-flight frames."""
    spec, chunks = _generic_job(ModSquareMapper(7))
    ref = InProcessExecutor().execute(spec, chunks)
    before = _shm_listing()
    with _pool("crash@map:worker=0,frame=2", "mesh", "worker",
               depth=2) as pool:
        frames = [pool.submit(spec, chunks) for _ in range(3)]
        results = [pool.collect(f) for f in frames]
        snap = pool._supervisor.snapshot()
    for r in results:
        assert_results_identical(r, ref)
    assert snap["failures"] == 1 and snap["respawns"] == 1
    assert snap["frames_reexecuted"] >= 1
    assert _shm_listing() - before == set()


def test_mesh_watermark_expiry_raises_ring_timeout():
    """The watermark wait is bounded by the promoted knob, not the ring
    write timeout: an unreachable watermark raises within it."""
    mesh = WorkerMesh(0, 1, edge_capacity=1 << 12, write_timeout=30.0,
                      watermark_timeout=0.2)
    try:
        t0 = time.monotonic()
        with pytest.raises(RingTimeout, match="watermark"):
            mesh.take_frame(1, owned=[0], n_chunks=1,
                            kv_dtype=np.dtype("int64"))
        assert time.monotonic() - t0 < 5.0  # bounded by 0.2s, not 30s
    finally:
        mesh.close()


def test_wedged_stalled_worker_recovers():
    """A stalled (alive but unresponsive) worker wedges its peers: with
    a small mesh edge, worker 1's fragment writes into the sleeping
    worker 0's inbound edge block until the ring write timeout, which
    classifies as a wedged transport and recovers like a death — the
    stalled worker is SIGTERMed with the rest of the epoch.

    Many chunks (rather than bigger runs, which would overflow the
    record-size limit and fall back through the parent) guarantee the
    wedge: before its first map message arrives, the to-be-stalled
    worker cooperatively drains its inbound edges, and with only a few
    records a loaded machine can let the peer finish shuffling inside
    that window — then nothing ever blocks and the test just sleeps
    out the stall."""
    spec, chunks = _generic_job(ModSquareMapper(7), n_chunks=32,
                                n_elems=512)
    ref = InProcessExecutor().execute(spec, chunks)
    before = _shm_listing()
    with _pool("stall(30)@map:worker=0,frame=1", "mesh", "worker",
               mesh_edge_capacity=3072, ring_write_timeout=1.0) as pool:
        t0 = time.monotonic()
        result = pool.execute(spec, chunks)
        assert time.monotonic() - t0 < 20.0  # recovered, didn't sleep out
        snap = pool._supervisor.snapshot()
    assert_results_identical(result, ref)
    assert snap["failures"] >= 1
    assert snap["respawns"] >= 1
    assert "shuffle-out" in snap["retries_by_stage"]
    assert _shm_listing() - before == set()


def test_user_code_errors_stay_fatal_under_supervision():
    spec, chunks = _generic_job(ModSquareMapper(7))
    spec.reducer = BoomReducer()
    with _pool(reduce_mode="worker", shuffle_mode="mesh") as pool:
        with pytest.raises(RuntimeError, match="task failure"):
            pool.execute(spec, chunks)
        assert not pool._supervisor.active


def test_supervise_false_keeps_legacy_fail_fast():
    spec, chunks = _generic_job(ModSquareMapper(7))
    pool = SharedMemoryPoolExecutor(
        workers=2,
        supervise=False,
        pool_config=PoolConfig(fault_plan="crash@map:worker=0,frame=1"),
    )
    with pool:
        with pytest.raises(RuntimeError, match="died during execute"):
            pool.execute(spec, chunks)


# -- degradation ladder ------------------------------------------------------
@pytest.mark.parametrize("shuffle_mode,reduce_mode", [
    ("parent", "parent"),
    pytest.param("mesh", "worker", marks=pytest.mark.slow),
])
def test_persistent_fault_degrades_to_serial(shuffle_mode, reduce_mode):
    """gen=any makes every respawned wave re-crash: the ladder must
    shrink 2 -> 1, then finish on the serial executor — never error."""
    spec, chunks = _generic_job(ModSquareMapper(7))
    ref = InProcessExecutor().execute(spec, chunks)
    before = _shm_listing()
    with _pool("crash@map:worker=0,frame=1,gen=any", shuffle_mode,
               reduce_mode, retries=1) as pool:
        result = pool.execute(spec, chunks)
        snap = pool._supervisor.snapshot()
        # The pool is pinned to the serial floor for later frames too.
        again = pool.execute(spec, chunks)
    assert_results_identical(result, ref)
    assert_results_identical(again, ref)
    assert snap["degraded_events"] == [(2, 1)]
    assert snap["serial_fallback"] is True
    assert result.stats.recovery["workers"] == 0
    assert _shm_listing() - before == set()


def test_shuffle_spec_degrade_reowns_every_partition():
    """The degradation step's ownership contract: the same
    ``partition % n_workers`` rule over the surviving count covers every
    partition exactly once, so re-owning cannot change results."""
    from repro.core.executors import ShuffleSpec

    spec = ShuffleSpec(n_reducers=5, n_workers=3)
    shrunk = spec.degrade(2)
    assert (shrunk.n_reducers, shrunk.n_workers) == (5, 2)
    owned = sorted(
        p for w in range(2) for p in shrunk.owned_partitions(w)
    )
    assert owned == list(range(5))
    assert spec.degrade(1).owned_partitions(0) == list(range(5))  # serial
    with pytest.raises(ValueError):
        spec.degrade(0)
    with pytest.raises(ValueError):
        spec.degrade(4)  # degrade only shrinks


# -- shutdown hygiene --------------------------------------------------------
def test_close_is_idempotent_and_concurrent_safe():
    spec, chunks = _generic_job(ModSquareMapper(7))
    before = _shm_listing()
    pool = _pool()
    pool.execute(spec, chunks)
    errors = []

    def _close():
        try:
            pool.close()
        except BaseException as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=_close) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    pool.close()  # and once more, serially
    assert errors == []
    assert _shm_listing() - before == set()


def test_sigterm_worker_exits_cleanly_and_recovery_continues():
    """An external SIGTERM looks like any other death to the watchdog;
    the worker's handler converts it to SystemExit so its finally-block
    teardown (arena detach, ring close) runs before the exit."""
    spec, chunks = _generic_job(ModSquareMapper(7))
    ref = InProcessExecutor().execute(spec, chunks)
    before = _shm_listing()
    with _pool() as pool:
        first = pool.execute(spec, chunks)
        victim = pool._state["procs"][0]
        os.kill(victim.pid, signal.SIGTERM)
        victim.join(5.0)
        assert not victim.is_alive()
        # The next frame trips the watchdog and recovers in place.
        second = pool.execute(spec, chunks)
        snap = pool._supervisor.snapshot()
    assert_results_identical(first, ref)
    assert_results_identical(second, ref)
    assert snap["failures"] >= 1 and snap["respawns"] >= 1
    assert _shm_listing() - before == set()


def test_crash_exit_code_is_distinct():
    assert CRASH_EXIT_CODE == 70


def test_dead_workers_reports_name_and_exitcode():
    class FakeProc:
        def __init__(self, name, alive, code):
            self.name, self._alive, self.exitcode = name, alive, code

        def is_alive(self):
            return self._alive

    procs = [FakeProc("w0", True, None), FakeProc("w1", False, 70)]
    assert dead_workers(procs) == [("w1", 70)]
