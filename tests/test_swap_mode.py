"""Tests for the sort-last (swap-compositing) rendering mode (§6.1)."""

import numpy as np
import pytest

from repro.pipeline import (
    LocalPartitioner,
    MapReduceVolumeRenderer,
    render_swap,
    slab_assignment,
)
from repro.render import (
    Camera,
    RenderConfig,
    default_tf,
    max_abs_diff,
    orbit_camera,
    render_reference,
)
from repro.volume import BrickGrid, make_dataset

VOL = make_dataset("supernova", (24, 24, 24))
TF = default_tf()
CFG = RenderConfig(dt=0.8, ert_alpha=1.0)


def test_local_partitioner_pins_everything():
    p = LocalPartitioner(4, owner=2)
    dests = p.partition(np.arange(100))
    assert np.all(dests == 2)
    with pytest.raises(ValueError):
        LocalPartitioner(4, owner=4)


def test_slab_assignment_covers_all_bricks_once():
    grid = BrickGrid(VOL.shape, 6, ghost=1)  # 4x4x4 bricks
    cam = orbit_camera(VOL.shape, azimuth_deg=10, elevation_deg=5, width=32, height=32)
    slabs, axis = slab_assignment(grid, cam, 4)
    assert 0 <= axis < 3
    all_ids = sorted(i for slab in slabs for i in slab)
    assert all_ids == list(range(len(grid)))
    # Slabs are contiguous along the axis, in depth order.
    eye = np.asarray(cam.eye)
    prev = None
    for slab in slabs:
        coords = [grid.brick(i).index[axis] for i in slab]
        dists = [abs(c - eye[axis] / grid.brick_size[axis]) for c in coords]
        if prev is not None and dists:
            assert min(dists) >= prev - 1e-9
        if dists:
            prev = max(dists)


def test_slab_assignment_rejects_eye_inside_axis_extent():
    grid = BrickGrid(VOL.shape, 12, ghost=1)
    # Eye inside the volume footprint along every axis.
    cam = Camera(eye=(12.0, 12.0, 12.5), center=(12.0, 12.0, 0.0), up=(0, 1, 0), width=16, height=16)
    with pytest.raises(ValueError, match="inside the volume"):
        slab_assignment(grid, cam, 2)


def test_slab_assignment_validation():
    grid = BrickGrid(VOL.shape, 12, ghost=1)
    cam = orbit_camera(VOL.shape, width=16, height=16)
    with pytest.raises(ValueError):
        slab_assignment(grid, cam, 0)


@pytest.mark.parametrize("az,el", [(15, 10), (100, 30), (250, -20)])
def test_swap_render_equals_reference(az, el):
    """Sort-last local compositing + swap merge == single-pass image."""
    cam = orbit_camera(VOL.shape, azimuth_deg=az, elevation_deg=el, width=48, height=48)
    ref = render_reference(VOL, cam, TF, CFG)
    swap = render_swap(VOL, cam, TF, n_gpus=3, config=CFG, grid=BrickGrid(VOL.shape, 6, ghost=1))
    assert max_abs_diff(swap.image, ref.image) < 1e-4


def test_swap_render_equals_direct_send_pipeline():
    """§6.1: the two compositing schemes produce the same image."""
    cam = orbit_camera(VOL.shape, azimuth_deg=40, elevation_deg=25, width=48, height=48)
    direct = MapReduceVolumeRenderer(
        volume=VOL, cluster=4, tf=TF, render_config=CFG
    ).render(cam, grid=BrickGrid(VOL.shape, 6, ghost=1))
    swap = render_swap(VOL, cam, TF, n_gpus=4, config=CFG, grid=BrickGrid(VOL.shape, 6, ghost=1))
    assert max_abs_diff(swap.image, direct.image) < 1e-4


def test_swap_more_gpus_than_slices_still_works():
    cam = orbit_camera(VOL.shape, width=32, height=32)
    grid = BrickGrid(VOL.shape, 12, ghost=1)  # 2 slices per axis
    swap = render_swap(VOL, cam, TF, n_gpus=5, config=CFG, grid=grid)
    ref = render_reference(VOL, cam, TF, CFG)
    assert max_abs_diff(swap.image, ref.image) < 1e-4


def test_swap_fragment_accounting():
    cam = orbit_camera(VOL.shape, width=32, height=32)
    swap = render_swap(VOL, cam, TF, n_gpus=2, config=CFG)
    assert len(swap.partial_images) == 2
    assert sum(swap.fragments_per_gpu) > 0
    for img in swap.partial_images:
        assert img.shape == (32, 32, 4)
