"""Tests for transfer functions and opacity correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import (
    TransferFunction1D,
    bone_tf,
    default_tf,
    fire_tf,
    grayscale_tf,
    opacity_correction,
)


def test_table_validation():
    with pytest.raises(ValueError):
        TransferFunction1D(np.zeros((1, 4), np.float32))  # too few entries
    with pytest.raises(ValueError):
        TransferFunction1D(np.zeros((4, 3), np.float32))  # not RGBA
    with pytest.raises(ValueError):
        TransferFunction1D(np.full((4, 4), 2.0, np.float32))  # out of range
    with pytest.raises(ValueError):
        TransferFunction1D(np.zeros((4, 4), np.float32), vmin=1.0, vmax=0.0)


def test_lookup_endpoints_and_clamp():
    table = np.array([[0, 0, 0, 0], [1, 1, 1, 1]], dtype=np.float32)
    tf = TransferFunction1D(table)
    got = tf.lookup(np.array([-0.5, 0.0, 0.5, 1.0, 2.0]))
    assert np.allclose(got[0], 0.0)  # clamped below
    assert np.allclose(got[1], 0.0)
    assert np.allclose(got[2], 0.5)  # midpoint interpolates
    assert np.allclose(got[3], 1.0)
    assert np.allclose(got[4], 1.0)  # clamped above


def test_lookup_linear_between_entries():
    tf = grayscale_tf(resolution=256, max_alpha=1.0)
    v = np.linspace(0, 1, 97)
    got = tf.lookup(v)
    assert np.allclose(got[:, 0], v, atol=1e-3)
    assert np.allclose(got[:, 3], v, atol=1e-3)


def test_lookup_respects_domain():
    table = np.array([[0, 0, 0, 0], [1, 1, 1, 1]], dtype=np.float32)
    tf = TransferFunction1D(table, vmin=10.0, vmax=20.0)
    assert np.allclose(tf.lookup(np.array([15.0]))[0], 0.5)


@pytest.mark.parametrize("maker", [default_tf, bone_tf, fire_tf, grayscale_tf])
def test_presets_valid(maker):
    tf = maker()
    assert tf.resolution == 256
    out = tf.lookup(np.linspace(0, 1, 50))
    assert np.all(out >= 0) and np.all(out <= 1)
    # Opacity must be (weakly) increasing for these presets.
    alphas = tf.lookup(np.linspace(0, 1, 50))[:, 3]
    assert np.all(np.diff(alphas) >= -1e-6)


def test_opacity_threshold_value():
    tf = grayscale_tf(max_alpha=0.8)
    thr = tf.opacity_threshold_value(alpha_eps=0.05)
    # alpha(v) = 0.8 v, so alpha > 0.05 at v > 0.0625.
    assert 0.04 < thr < 0.09
    opaque_free = TransferFunction1D(
        np.stack([np.linspace(0, 1, 16)] * 3 + [np.zeros(16)], axis=1).astype(
            np.float32
        )
    )
    assert opaque_free.opacity_threshold_value() == opaque_free.vmax


def test_opacity_correction_identity_at_unit_step():
    a = np.array([0.0, 0.3, 0.7, 0.99])
    assert np.allclose(opacity_correction(a, 1.0), np.minimum(a, 0.9999))


def test_opacity_correction_validation():
    with pytest.raises(ValueError):
        opacity_correction(np.array([0.5]), 0.0)


@given(alpha=st.floats(0.0, 0.999), dt=st.floats(0.05, 4.0))
@settings(max_examples=100, deadline=None)
def test_opacity_correction_properties(alpha, dt):
    """Correction stays in [0,1), is monotone in dt, identity at dt=1."""
    a = np.array([alpha])
    c = opacity_correction(a, dt)[0]
    assert 0.0 <= c < 1.0
    c2 = opacity_correction(a, dt * 2)[0]
    assert c2 >= c - 1e-12  # longer step accumulates at least as much


@given(alpha=st.floats(0.01, 0.95))
@settings(max_examples=60, deadline=None)
def test_two_half_steps_equal_one_full_step(alpha):
    """Compositing two dt/2-corrected samples equals one dt sample.

    This is the property that makes the fixed-step march independent of
    how samples fall into bricks (for homogeneous media).
    """
    a_full = opacity_correction(np.array([alpha]), 1.0)[0]
    a_half = opacity_correction(np.array([alpha]), 0.5)[0]
    combined = a_half + (1 - a_half) * a_half
    assert combined == pytest.approx(a_full, rel=1e-5)
