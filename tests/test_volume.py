"""Tests for the volume container and procedural datasets."""

import numpy as np
import pytest

from repro.volume import (
    DATASET_FIELDS,
    PAPER_RESOLUTIONS,
    Volume,
    field_on_grid,
    make_dataset,
)


def test_volume_casts_to_float32():
    v = Volume(np.zeros((4, 4, 4), dtype=np.float64))
    assert v.data.dtype == np.float32


def test_volume_rejects_non_3d():
    with pytest.raises(ValueError):
        Volume(np.zeros((4, 4)))


def test_volume_geometry():
    v = Volume(np.zeros((8, 16, 32), dtype=np.float32))
    assert v.shape == (8, 16, 32)
    assert v.voxel_count == 8 * 16 * 32
    assert v.nbytes == v.voxel_count * 4
    lo, hi = v.bbox
    assert np.allclose(lo, 0) and np.allclose(hi, [8, 16, 32])


def test_resolution_label():
    assert Volume(np.zeros((64,) * 3, np.float32)).resolution_label() == "64^3"
    assert (
        Volume(np.zeros((8, 8, 32), np.float32)).resolution_label() == "8x8x32"
    )


def test_region_extraction_and_validation():
    data = np.arange(4 * 4 * 4, dtype=np.float32).reshape(4, 4, 4)
    v = Volume(data)
    r = v.region((1, 0, 2), (3, 2, 4))
    assert r.shape == (2, 2, 2)
    assert np.array_equal(r, data[1:3, 0:2, 2:4])
    with pytest.raises(ValueError):
        v.region((0, 0, 0), (5, 4, 4))
    with pytest.raises(ValueError):
        v.region((2, 0, 0), (2, 4, 4))


def test_field_on_grid_region_matches_full():
    """Evaluating a sub-region must equal slicing the full evaluation."""
    field = DATASET_FIELDS["supernova"]
    full = field_on_grid(field, (16, 16, 16))
    part = field_on_grid(field, (16, 16, 16), lo=(4, 2, 8), hi=(12, 10, 16))
    assert np.array_equal(part, full[4:12, 2:10, 8:16])


def test_field_on_grid_validation():
    field = DATASET_FIELDS["skull"]
    with pytest.raises(ValueError):
        field_on_grid(field, (0, 4, 4))
    with pytest.raises(ValueError):
        field_on_grid(field, (4, 4, 4), lo=(2, 0, 0), hi=(2, 4, 4))


@pytest.mark.parametrize("name", sorted(DATASET_FIELDS))
def test_datasets_in_unit_range_and_deterministic(name):
    v1 = make_dataset(name, (24, 24, 24))
    v2 = make_dataset(name, (24, 24, 24))
    assert v1.data.min() >= 0.0 and v1.data.max() <= 1.0
    assert np.array_equal(v1.data, v2.data)
    assert v1.name == name


@pytest.mark.parametrize("name", sorted(DATASET_FIELDS))
def test_datasets_nonempty_and_not_full(name):
    """Each dataset must have both structure and empty space."""
    v = make_dataset(name, (32, 32, 32))
    occ = np.count_nonzero(v.data > 0.05) / v.voxel_count
    assert 0.005 < occ < 0.9, f"{name} occupancy {occ}"


def test_skull_mostly_empty():
    v = make_dataset("skull", (48, 48, 48))
    occ = np.count_nonzero(v.data > 0.1) / v.voxel_count
    assert occ < 0.5


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError, match="unknown dataset"):
        make_dataset("teapot", (8, 8, 8))


def test_paper_resolutions_table():
    assert (1024, 1024, 1024) in PAPER_RESOLUTIONS["skull"]
    assert PAPER_RESOLUTIONS["plume"] == [(512, 512, 2048)]


def test_plume_anisotropic_structure():
    """The plume rises along z: upper half must contain more mass."""
    v = make_dataset("plume", (16, 16, 64))
    lower = v.data[:, :, :32].sum()
    upper = v.data[:, :, 32:].sum()
    assert upper > lower
