"""Tests for the .bvol bricked container and out-of-core reader."""

import numpy as np
import pytest

from repro.volume import BvolReader, make_dataset, write_bvol
from repro.volume.occupancy import (
    brick_occupancy_estimate,
    brick_occupancy_exact,
    grid_occupancy,
)
from repro.volume.bricking import BrickGrid
from repro.volume.datasets import skull_field


def test_roundtrip_volume(tmp_path):
    v = make_dataset("skull", (24, 24, 24))
    path = tmp_path / "skull.bvol"
    grid = write_bvol(path, v, brick_size=10)
    r = BvolReader(path)
    assert r.shape == v.shape
    assert len(r) == len(grid)
    back = r.read_volume()
    assert np.array_equal(back.data, v.data)
    assert back.name == "skull"


def test_read_single_brick_matches_extract(tmp_path):
    v = make_dataset("supernova", (20, 20, 20))
    path = tmp_path / "sn.bvol"
    grid = write_bvol(path, v, brick_size=8)
    r = BvolReader(path)
    for i in (0, 3, len(grid) - 1):
        assert np.array_equal(r.read_brick(i), grid.extract(v, grid.brick(i)))


def test_reader_tracks_bytes_read(tmp_path):
    v = make_dataset("plume", (8, 8, 16))
    path = tmp_path / "p.bvol"
    write_bvol(path, v, brick_size=8)
    r = BvolReader(path)
    assert r.bytes_read == 0
    payload = r.read_brick(0)
    assert r.bytes_read == payload.nbytes


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.bvol"
    path.write_bytes(b"NOTBVOL" + b"\x00" * 64)
    with pytest.raises(ValueError, match="not a .bvol"):
        BvolReader(path)


def test_file_size_accounts_for_ghost_overlap(tmp_path):
    v = make_dataset("skull", (16, 16, 16))
    path = tmp_path / "g.bvol"
    grid = write_bvol(path, v, brick_size=8, ghost=1)
    r = BvolReader(path)
    assert r.file_size() > v.nbytes  # ghost shells duplicate boundary voxels
    assert r.file_size() >= grid.total_payload_bytes()


# -- occupancy ---------------------------------------------------------------
def test_occupancy_exact_bounds():
    v = make_dataset("skull", (24, 24, 24))
    g = BrickGrid(v.shape, 12)
    occ = grid_occupancy(g, threshold=0.1, volume=v)
    assert occ.shape == (len(g),)
    assert np.all((0 <= occ) & (occ <= 1))


def test_occupancy_estimate_close_to_exact():
    v = make_dataset("skull", (32, 32, 32))
    g = BrickGrid(v.shape, 16)
    exact = grid_occupancy(g, threshold=0.1, volume=v)
    est = grid_occupancy(g, threshold=0.1, field=skull_field, samples_per_axis=16)
    assert np.all(np.abs(exact - est) < 0.15)


def test_occupancy_empty_vs_full():
    g = BrickGrid((8, 8, 8), 8)
    b = g.brick(0)
    assert brick_occupancy_estimate(lambda x, y, z: x * 0, (8, 8, 8), b, 0.5) == 0.0
    assert (
        brick_occupancy_estimate(lambda x, y, z: x * 0 + 1, (8, 8, 8), b, 0.5) == 1.0
    )


def test_occupancy_requires_exactly_one_source():
    v = make_dataset("skull", (8, 8, 8))
    g = BrickGrid(v.shape, 8)
    with pytest.raises(ValueError):
        grid_occupancy(g, 0.1)
    with pytest.raises(ValueError):
        grid_occupancy(g, 0.1, volume=v, field=skull_field)
