"""Validation of the analytic workload model against functional runs."""

import numpy as np
import pytest

from repro.core import InProcessExecutor, RoundRobinPartitioner
from repro.pipeline import MapReduceVolumeRenderer, build_workload, model_brick_work
from repro.pipeline.workload import _route_exact
from repro.render import RenderConfig, default_tf, orbit_camera
from repro.volume import BrickGrid, grid_occupancy, make_dataset


@pytest.fixture(scope="module")
def setup():
    vol = make_dataset("supernova", (32, 32, 32))
    cam = orbit_camera(vol.shape, azimuth_deg=30, elevation_deg=20, width=64, height=64)
    tf = default_tf()
    cfg = RenderConfig(dt=0.8, ert_alpha=1.0, emit_placeholders=True)
    grid = BrickGrid(vol.shape, 16, ghost=1)
    return vol, cam, tf, cfg, grid


def functional_works(vol, cam, tf, cfg, grid, n_gpus=4):
    r = MapReduceVolumeRenderer(
        volume=vol, cluster=n_gpus, tf=tf, render_config=cfg
    )
    spec = r._spec(cam)
    chunks = r._chunks(grid, out_of_core=False)
    res = InProcessExecutor().execute(spec, chunks, [c.id % n_gpus for c in chunks])
    return res.works


def test_model_ray_counts_exact(setup):
    """Padded ray counts are pure geometry — the model must match exactly."""
    vol, cam, tf, cfg, grid = setup
    works = functional_works(vol, cam, tf, cfg, grid)
    occ = grid_occupancy(grid, tf.opacity_threshold_value(), volume=vol)
    for w in works:
        bw = model_brick_work(grid.brick(w.chunk_id), cam, cfg.dt, occ[w.chunk_id])
        assert bw.n_rays == w.n_rays, f"brick {w.chunk_id}"


def test_model_sample_counts_within_factor(setup):
    vol, cam, tf, cfg, grid = setup
    works = functional_works(vol, cam, tf, cfg, grid)
    occ = grid_occupancy(grid, tf.opacity_threshold_value(), volume=vol)
    total_real = sum(w.n_samples for w in works)
    # The functional run had ERT disabled (ert_alpha=1.0), so compare
    # against the ert=False model, which is pure geometry.
    total_model = sum(
        model_brick_work(
            grid.brick(w.chunk_id), cam, cfg.dt, occ[w.chunk_id], ert=False
        ).n_samples
        for w in works
    )
    assert total_model == pytest.approx(total_real, rel=0.35)


def test_model_fragment_counts_within_factor(setup):
    vol, cam, tf, cfg, grid = setup
    works = functional_works(vol, cam, tf, cfg, grid)
    occ = grid_occupancy(grid, tf.opacity_threshold_value(), volume=vol)
    real = sum(int(w.pairs_to_reducer.sum()) for w in works)
    model = sum(
        model_brick_work(grid.brick(w.chunk_id), cam, cfg.dt, occ[w.chunk_id]).kept_fragments
        for w in works
    )
    assert real > 0
    assert model == pytest.approx(real, rel=0.75)


def test_route_exact_conserves_and_balances(setup):
    vol, cam, tf, cfg, grid = setup
    part = RoundRobinPartitioner(4)
    for b in grid:
        routed = _route_exact(1000, b, cam, part)
        if routed.sum() == 0:
            continue
        assert int(routed.sum()) == 1000
        # Round-robin balances well; sub-rect aliasing (image width ≡ 0
        # mod n_reducers repeats each row's residue pattern) bounds the
        # skew at roughly the rect-width remainder effect, ~30%.
        assert routed.max() - routed.min() <= 0.35 * routed.max() + 8


def test_build_workload_shapes(setup):
    vol, cam, tf, cfg, grid = setup
    occ = grid_occupancy(grid, tf.opacity_threshold_value(), volume=vol)
    works = build_workload(grid, cam, cfg.dt, occ, RoundRobinPartitioner(4), n_gpus=4)
    assert len(works) == len(grid)
    assert {w.gpu for w in works} <= set(range(4))
    for w in works:
        assert w.pairs_emitted >= int(w.pairs_to_reducer.sum())
        assert w.upload_bytes == grid.brick(w.chunk_id).nbytes


def test_build_workload_validation(setup):
    vol, cam, tf, cfg, grid = setup
    occ = grid_occupancy(grid, tf.opacity_threshold_value(), volume=vol)
    with pytest.raises(ValueError):
        build_workload(grid, cam, cfg.dt, occ[:2], RoundRobinPartitioner(2), 2)
    with pytest.raises(ValueError):
        build_workload(grid, cam, cfg.dt, occ, RoundRobinPartitioner(2), 0)


def test_model_brick_work_validation(setup):
    vol, cam, tf, cfg, grid = setup
    b = grid.brick(0)
    with pytest.raises(ValueError):
        model_brick_work(b, cam, 0.0, 0.5)
    with pytest.raises(ValueError):
        model_brick_work(b, cam, 0.5, 1.5)


def test_empty_brick_produces_no_fragments(setup):
    vol, cam, tf, cfg, grid = setup
    bw = model_brick_work(grid.brick(0), cam, cfg.dt, occupancy=0.0)
    assert bw.kept_fragments == 0
    assert bw.n_rays > 0  # threads still launch over the footprint
